// Farm durability: a write-ahead journal makes the job store survive
// process death.
//
// With Config.StateDir set, every job lifecycle transition — submission,
// start, terminal verdict, eviction — is appended to a CRC-framed journal
// (internal/checkpoint) before it takes effect, and each running job
// checkpoints its session to its own file in the state directory. On
// restart the journal is replayed: terminal jobs come back with their
// results servable from disk, interrupted jobs are re-queued and resume
// from their latest checkpoint, and a torn journal tail (the record being
// written when the process died) is salvaged by truncation. The journal
// head is strict: a corrupt header or a future format version refuses to
// start rather than silently dropping history.
//
// The journal does not grow without bound: once it passes
// Config.JournalCompactBytes it is atomically rewritten (temp file +
// rename) as the minimal stream reproducing the live store — see
// compactJournalLocked. A crash at any instant during compaction leaves
// either the complete old journal or the complete new one.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"

	"repro/hotspot"
	"repro/internal/checkpoint"
	"repro/internal/telemetry"
)

// Journal record operations. The journal is the farm's source of truth:
// a job's state on restart is whatever its most recent record says.
const (
	opSubmit = "submit" // job accepted; Request is the full submission
	opState  = "state"  // non-terminal transition (queued → running)
	opDone   = "done"   // terminal verdict; State/Error/Result are final
	opEvict  = "evict"  // terminal job dropped from the store
	// opNext advances the job-id watermark without a submission. Compaction
	// writes it as the final record: evicted jobs vanish from the compacted
	// stream, and without the watermark a restart would hand their ids out
	// again — tripping the submit-reuses-id validation on the NEXT restart.
	opNext = "next" // ID is the next id to assign
)

// journalRecord is one journaled lifecycle transition, stored as JSON
// inside a CRC-framed record.
type journalRecord struct {
	Op      string          `json:"op"`
	ID      int             `json:"id"`
	Request *TuneRequest    `json:"request,omitempty"`
	State   string          `json:"state,omitempty"`
	Error   string          `json:"error,omitempty"`
	Result  *hotspot.Result `json:"result,omitempty"`
}

// NewDurableServer builds a ready-to-serve handler with the given bounds
// and starts its worker pool. With cfg.StateDir set the server is durable:
// it replays the state directory's journal — serving finished results from
// disk and re-queuing interrupted jobs from their checkpoints — before
// accepting new work. The error is non-nil only when recovery fails; an
// empty StateDir never fails.
func NewDurableServer(cfg Config) (*Server, error) {
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = DefaultConfig().MaxConcurrent
	}
	if cfg.MaxJobs < 1 {
		cfg.MaxJobs = DefaultConfig().MaxJobs
	}
	s := &Server{
		mux:      http.NewServeMux(),
		cfg:      cfg,
		stateDir: cfg.StateDir,
		queue:    make(chan *Job, cfg.MaxJobs),
		jobs:     map[int]*Job{},
		nextID:   1,
		reg:      telemetry.New(),
		evTrace:  telemetry.NewTracer(4 * cfg.MaxJobs),
		events:   make(chan telemetry.Event, 4*cfg.MaxJobs),
	}
	switch {
	case cfg.MaxQueueDepth > 0 && cfg.MaxQueueDepth <= cfg.MaxJobs:
		s.maxQueueDepth = cfg.MaxQueueDepth
	case cfg.MaxQueueDepth == 0 || cfg.MaxQueueDepth > cfg.MaxJobs:
		s.maxQueueDepth = cfg.MaxJobs // the queue's physical capacity
	}
	if cfg.ClientRatePerSec > 0 {
		s.admit = newAdmission(cfg.ClientRatePerSec, cfg.ClientBurst, nil)
	}
	switch {
	case cfg.JournalCompactBytes > 0:
		s.compactBytes = cfg.JournalCompactBytes
	case cfg.JournalCompactBytes == 0:
		s.compactBytes = DefaultJournalCompactBytes
	}
	s.routes()
	s.reg.Gauge("httpapi_workers").Set(float64(cfg.MaxConcurrent))

	// The lifecycle-event collector starts before journal replay so that
	// recovery can stream an unbounded number of events without filling the
	// channel; the worker pool starts after, so no job runs mid-replay.
	s.evWG.Add(1)
	go func() {
		defer s.evWG.Done()
		for ev := range s.events {
			s.evTrace.Emit(ev)
		}
	}()
	if s.stateDir != "" {
		if err := s.recover(); err != nil {
			s.drainEvents()
			return nil, err
		}
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for job := range s.queue {
				s.runJob(job)
			}
		}()
	}
	return s, nil
}

// recover opens the state directory's journal, replays it into the job
// store, and re-queues every job the previous process left unfinished.
func (s *Server) recover() error {
	if err := os.MkdirAll(s.stateDir, 0o755); err != nil {
		return fmt.Errorf("httpapi: state dir: %w", err)
	}
	journal, records, err := checkpoint.OpenJournal(filepath.Join(s.stateDir, "farm.journal"), s.reg)
	if err != nil {
		return fmt.Errorf("httpapi: journal: %w", err)
	}
	s.journal = journal
	for i, raw := range records {
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("httpapi: journal record %d: %v: %w", i, err, checkpoint.ErrCorrupt)
		}
		if err := s.applyRecord(i, rec); err != nil {
			return err
		}
	}
	s.requeueRecovered()
	return nil
}

// applyRecord folds one replayed journal record into the job store. Records
// are trusted to be framing-valid (the CRC held); their contents are still
// validated, because a record that frames cleanly but makes no sense means
// the journal was written by broken software — fail closed.
func (s *Server) applyRecord(i int, rec journalRecord) error {
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("httpapi: journal record %d: %s: %w", i, fmt.Sprintf(format, args...), checkpoint.ErrCorrupt)
	}
	switch rec.Op {
	case opSubmit:
		if rec.ID <= 0 || rec.Request == nil {
			return corrupt("submit without id or request")
		}
		if _, dup := s.jobs[rec.ID]; dup || rec.ID < s.nextID {
			return corrupt("submit reuses job id %d", rec.ID)
		}
		s.jobs[rec.ID] = &Job{
			ID: rec.ID, State: "queued", Request: *rec.Request,
			tel:   telemetry.New(),
			trace: telemetry.NewTracer(0),
		}
		s.nextID = rec.ID + 1
	case opState:
		if rec.State != "queued" && rec.State != "running" {
			return corrupt("state record carries terminal state %q", rec.State)
		}
		job, ok := s.jobs[rec.ID]
		if !ok {
			return corrupt("state for unknown job %d", rec.ID)
		}
		if !job.terminal() {
			job.State = rec.State
		}
	case opDone:
		job, ok := s.jobs[rec.ID]
		if !ok {
			return corrupt("verdict for unknown job %d", rec.ID)
		}
		if job.terminal() {
			return corrupt("second verdict for job %d", rec.ID)
		}
		job.State, job.Error, job.Result = rec.State, rec.Error, rec.Result
		if !job.terminal() {
			return corrupt("verdict %q is not terminal", rec.State)
		}
		s.doneOrder = append(s.doneOrder, rec.ID)
	case opEvict:
		if _, ok := s.jobs[rec.ID]; !ok {
			return corrupt("evict of unknown job %d", rec.ID)
		}
		delete(s.jobs, rec.ID)
		keep := s.doneOrder[:0]
		for _, id := range s.doneOrder {
			if id != rec.ID {
				keep = append(keep, id)
			}
		}
		s.doneOrder = keep
	case opNext:
		if rec.ID < s.nextID {
			return corrupt("id watermark %d behind next id %d", rec.ID, s.nextID)
		}
		s.nextID = rec.ID
	default:
		return corrupt("unknown op %q", rec.Op)
	}
	return nil
}

// requeueRecovered puts every replayed non-terminal job back on the queue,
// oldest first. A job the previous process had already started resumes
// from its checkpoint; one still queued starts from scratch. If the queue
// cannot hold them all (the store was configured smaller than it was), the
// overflow is canceled with an explanatory error rather than dropped.
func (s *Server) requeueRecovered() {
	for id := 1; id < s.nextID; id++ {
		job, ok := s.jobs[id]
		if !ok || job.terminal() {
			continue
		}
		s.reg.Counter("httpapi_jobs_recovered_total").Inc()
		job.State = "queued"
		s.inflight.Add(1)
		select {
		case s.queue <- job:
			s.reg.Counter("httpapi_jobs_requeued_total").Inc()
			s.noteJob(job.ID, "requeued")
		default:
			job.State = "canceled"
			job.Error = "recovered but not requeued: job queue full"
			s.jobTerminalLocked(job) // journals the verdict, releases the ticket
		}
	}
	s.reg.Gauge("httpapi_queue_depth").Set(float64(len(s.queue)))
}

// DefaultJournalCompactBytes is the journal size that triggers compaction
// when Config.JournalCompactBytes is zero.
const DefaultJournalCompactBytes = 1 << 20

// appendJournal writes one lifecycle record ahead of the transition it
// describes. Callers that can refuse the transition (submission) propagate
// the error; the rest count it — a full disk must not strand a finished
// job in limbo. Caller holds s.mu; without a state dir this is a no-op.
//
// A successful append that pushes the journal past the compaction
// threshold rewrites it in place before returning: the caller's record is
// already durable either way (it is part of the state the compacted stream
// reproduces), and doing it here keeps the trigger on the only path that
// grows the file.
func (s *Server) appendJournal(rec journalRecord) error {
	if s.journal == nil {
		return nil
	}
	b, err := json.Marshal(rec)
	if err == nil {
		err = s.journal.Append(b)
	}
	if err != nil {
		s.reg.Counter("httpapi_journal_errors_total").Inc()
		return err
	}
	if s.compactBytes > 0 && s.journal.Size() >= s.compactBytes {
		s.compactJournalLocked()
	}
	return nil
}

// compactJournalLocked atomically rewrites the farm journal as the minimal
// record stream reproducing the live store: one submission per stored job
// in id order, a running-state record for jobs mid-flight, terminal
// verdicts in eviction (doneOrder) order, and a trailing id watermark so
// ids of evicted-and-forgotten jobs are never reused. Jobs whose
// cancellation was an interruption (requeue flag) keep their verdict out
// of the compacted stream for the same reason jobTerminalLocked keeps it
// out of the append stream: a restart should resume them.
//
// Failure is not fatal — the uncompacted journal remains authoritative and
// the error counter ticks. Caller holds s.mu.
func (s *Server) compactJournalLocked() {
	var payloads [][]byte
	fail := func() {
		s.reg.Counter("httpapi_journal_errors_total").Inc()
	}
	add := func(rec journalRecord) bool {
		b, err := json.Marshal(rec)
		if err != nil {
			fail()
			return false
		}
		payloads = append(payloads, b)
		return true
	}
	for id := 1; id < s.nextID; id++ {
		job, ok := s.jobs[id]
		if !ok {
			continue
		}
		req := job.Request
		if !add(journalRecord{Op: opSubmit, ID: id, Request: &req}) {
			return
		}
		if job.State == "running" {
			if !add(journalRecord{Op: opState, ID: id, State: "running"}) {
				return
			}
		}
	}
	for _, id := range s.doneOrder {
		job, ok := s.jobs[id]
		if !ok || !job.terminal() {
			continue
		}
		if s.crashed || (job.requeue && job.State == "canceled") {
			continue // interruption, not a verdict — restart resumes it
		}
		if !add(journalRecord{Op: opDone, ID: id, State: job.State, Error: job.Error, Result: job.Result}) {
			return
		}
	}
	if !add(journalRecord{Op: opNext, ID: s.nextID}) {
		return
	}
	if err := s.journal.Rewrite(payloads); err != nil {
		fail()
		return
	}
	s.reg.Counter("httpapi_journal_compacted_records_total").Add(uint64(len(payloads)))
}

// jobCheckpointPath is where a job's tuning session snapshots itself.
func (s *Server) jobCheckpointPath(id int) string {
	return filepath.Join(s.stateDir, fmt.Sprintf("job-%d.ckpt", id))
}

// removeJobCheckpoint discards a job's session checkpoint; once the job is
// terminal (or evicted) the snapshot has nothing left to resume.
func (s *Server) removeJobCheckpoint(id int) {
	if s.stateDir == "" {
		return
	}
	_ = os.Remove(s.jobCheckpointPath(id))
	_ = os.Remove(s.jobCheckpointPath(id) + ".fleet")
}

// durableOptions attaches checkpoint/resume wiring to a job's session
// options. The corrupt-checkpoint pre-flight keeps one bad file from
// wedging its job forever: fail the snapshot, not the job.
func (s *Server) durableOptions(opts *hotspot.Options, id int) {
	if s.stateDir == "" {
		return
	}
	path := s.jobCheckpointPath(id)
	if _, err := checkpoint.Load(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		_ = os.Remove(path)
		s.reg.Counter("httpapi_job_checkpoints_discarded_total").Inc()
	}
	opts.CheckpointPath = path
	opts.CheckpointEveryTrials = s.cfg.CheckpointEveryTrials
	opts.Resume = true
	if len(s.cfg.Nodes) > 0 {
		// A distributed durable job keeps its fleet view next to its
		// checkpoint, recovered on the same resume path.
		opts.FleetStatePath = path + ".fleet"
	}
}

// Crash simulates the process dying mid-flight — kill -9, not a graceful
// shutdown. Nothing further is journaled (the real syscall would never
// happen), running jobs are cut off, and job checkpoints stay on disk
// exactly as the keeper last left them. A test facility: what a restarted
// server recovers after Crash is what it would recover after a power cut,
// minus the torn tail (exercised separately by corrupting the file).
func (s *Server) Crash() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.crashed = true
	journal := s.journal
	s.journal = nil
	for _, job := range s.jobs {
		switch {
		case job.State == "queued":
			job.State, job.Error = "canceled", "server crash"
			s.jobTerminalLocked(job)
		case job.cancel != nil:
			job.cancel()
		}
	}
	s.mu.Unlock()
	_ = journal.Close()
	close(s.queue)
	s.inflight.Wait()
	s.workers.Wait()
	s.drainEvents()
}
