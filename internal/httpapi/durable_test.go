package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/hotspot"
	"repro/internal/checkpoint"
)

// newDurableServer builds a durable test server over dir and serves it.
func newDurableServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.StateDir = dir
	s, err := NewDurableServer(cfg)
	if err != nil {
		t.Fatalf("durable server: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func TestDurableServerReplayServesResults(t *testing.T) {
	dir := t.TempDir()
	stubTune(t, func(_ context.Context, opts hotspot.Options) (*hotspot.Result, error) {
		return &hotspot.Result{Benchmark: opts.Benchmark, BestWall: 42}, nil
	})
	s, ts := newDurableServer(t, dir, Config{MaxConcurrent: 2, MaxJobs: 8})
	first := submitAsync(t, ts.URL, TuneRequest{Benchmark: "fop", Seed: 1})
	second := submitAsync(t, ts.URL, TuneRequest{Benchmark: "h2", Seed: 2})
	s.Wait()
	want := pollJob(t, ts.URL, first)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// A second server over the same state dir serves the finished results
	// from disk — without running anything.
	stubTune(t, func(context.Context, hotspot.Options) (*hotspot.Result, error) {
		t.Error("replayed terminal job was re-run")
		return nil, errors.New("re-run")
	})
	s2, ts2 := newDurableServer(t, dir, Config{MaxConcurrent: 2, MaxJobs: 8})
	got := pollJob(t, ts2.URL, first)
	if got.State != "done" || got.Result == nil || got.Result.BestWall != 42 {
		t.Fatalf("replayed job = %+v, want done with the stored result", got)
	}
	wb, _ := json.Marshal(want.Result)
	gb, _ := json.Marshal(got.Result)
	if string(wb) != string(gb) {
		t.Fatalf("replayed result differs:\nbefore: %s\nafter:  %s", wb, gb)
	}
	if j := pollJob(t, ts2.URL, second); j.State != "done" || j.Request.Benchmark != "h2" {
		t.Fatalf("second replayed job = %+v", j)
	}

	// Job ids keep counting from where the dead process stopped: a replayed
	// id can never be reissued to a new submission.
	stubTune(t, func(_ context.Context, opts hotspot.Options) (*hotspot.Result, error) {
		return &hotspot.Result{Benchmark: opts.Benchmark}, nil
	})
	if id := submitAsync(t, ts2.URL, TuneRequest{Benchmark: "fop"}); id != second+1 {
		t.Fatalf("post-restart submission got id %d, want %d", id, second+1)
	}
	s2.Wait()
}

// TestDurableServerCrashResumesJobByteIdentical is the farm's end-to-end
// crash drill: a job is killed mid-search along with its server, and after
// restart the re-queued job resumes from its checkpoint and finishes with
// the byte-identical result an uninterrupted run produces.
func TestDurableServerCrashResumesJobByteIdentical(t *testing.T) {
	req := TuneRequest{Benchmark: "fop", Searcher: "hillclimb", BudgetMinutes: 10, Seed: 11, Workers: 2}
	control, err := hotspot.Tune(hotspot.Options{
		Benchmark: req.Benchmark, Searcher: req.Searcher, BudgetMinutes: req.BudgetMinutes,
		Seed: req.Seed, Workers: req.Workers, Noise: -1,
	})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	// First life: the session crashes after a handful of trials (leaving
	// its checkpoint behind) and the job then hangs — a wedged worker the
	// crash takes down with the server.
	started := make(chan struct{}, 1)
	stubTune(t, func(ctx context.Context, opts hotspot.Options) (*hotspot.Result, error) {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(hotspot.SessionCrash); !ok {
						panic(r)
					}
				}
			}()
			opts.Chaos = "crash-at=6"
			_, _ = hotspot.TuneContext(ctx, opts)
			t.Error("crash-at plan did not fire")
		}()
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	cfg := Config{MaxConcurrent: 1, MaxJobs: 8, CheckpointEveryTrials: 1}
	s, ts := newDurableServer(t, dir, cfg)
	id := submitAsync(t, ts.URL, req)
	<-started
	if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("job-%d.ckpt", id))); err != nil {
		t.Fatalf("no job checkpoint on disk before the crash: %v", err)
	}
	s.Crash()

	// Second life: the real tuner. The journal replays the submission, the
	// job re-queues, and the session resumes from the checkpoint.
	stubTune(t, hotspot.TuneContext)
	s2, ts2 := newDurableServer(t, dir, cfg)
	s2.Wait()
	job := pollJob(t, ts2.URL, id)
	if job.State != "done" {
		t.Fatalf("recovered job = %q (%s), want done", job.State, job.Error)
	}
	wb, _ := json.Marshal(control)
	gb, _ := json.Marshal(job.Result)
	if string(wb) != string(gb) {
		t.Fatalf("resumed result differs from uninterrupted run:\nresumed:       %s\nuninterrupted: %s", gb, wb)
	}
	// The finished job's checkpoint is garbage-collected.
	if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("job-%d.ckpt", id))); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("finished job's checkpoint not removed: %v", err)
	}
}

func TestDurableServerShutdownRequeuesStragglers(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{}, 1)
	stubTune(t, func(ctx context.Context, _ hotspot.Options) (*hotspot.Result, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	s, ts := newDurableServer(t, dir, Config{MaxConcurrent: 1, MaxJobs: 4})
	running := submitAsync(t, ts.URL, TuneRequest{Benchmark: "fop", Seed: 7})
	queued := submitAsync(t, ts.URL, TuneRequest{Benchmark: "h2", Seed: 8})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown should hit the deadline, got %v", err)
	}

	// The interrupted jobs were NOT journaled as canceled: the restarted
	// server owes them a real run.
	stubTune(t, func(_ context.Context, opts hotspot.Options) (*hotspot.Result, error) {
		return &hotspot.Result{Benchmark: opts.Benchmark, BestWall: 7}, nil
	})
	s2, ts2 := newDurableServer(t, dir, Config{MaxConcurrent: 1, MaxJobs: 4})
	s2.Wait()
	for _, id := range []int{running, queued} {
		if job := pollJob(t, ts2.URL, id); job.State != "done" || job.Result == nil {
			t.Errorf("interrupted job %d after restart = %+v, want done", id, job)
		}
	}
}

func TestDurableServerSalvagesTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	stubTune(t, func(_ context.Context, opts hotspot.Options) (*hotspot.Result, error) {
		return &hotspot.Result{Benchmark: opts.Benchmark, BestWall: 9}, nil
	})
	s, ts := newDurableServer(t, dir, Config{MaxConcurrent: 1, MaxJobs: 4})
	id := submitAsync(t, ts.URL, TuneRequest{Benchmark: "fop"})
	s.Wait()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// A power cut mid-append leaves a torn record at the tail. The restart
	// truncates it away and keeps everything before it.
	path := filepath.Join(dir, "farm.journal")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x03, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, ts2 := newDurableServer(t, dir, Config{MaxConcurrent: 1, MaxJobs: 4})
	defer s2.Shutdown(context.Background())
	if job := pollJob(t, ts2.URL, id); job.State != "done" || job.Result == nil || job.Result.BestWall != 9 {
		t.Fatalf("job lost to a torn journal tail: %+v", job)
	}
	if got := s2.reg.Snapshot()["journal_salvaged_total"]; got != 1 {
		t.Errorf("journal_salvaged_total = %v, want 1", got)
	}
}

func TestDurableServerRefusesCorruptJournalHead(t *testing.T) {
	cases := []struct {
		name string
		head []byte
		want error
	}{
		{"garbage", []byte("this is not a journal, honest"), checkpoint.ErrCorrupt},
		{"future version", []byte{'A', 'T', 'C', 'K', 0xFF, 0x00, 0x00, 0x00}, checkpoint.ErrFutureVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "farm.journal"), tc.head, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := NewDurableServer(Config{StateDir: dir})
			if !errors.Is(err, tc.want) {
				t.Fatalf("corrupt journal head accepted: %v", err)
			}
		})
	}
}

// TestEvictNeverDropsLiveJobs is the regression test for the eviction
// invariant: whatever ends up on the done list, a queued or running job
// must never be evicted from the store.
func TestEvictNeverDropsLiveJobs(t *testing.T) {
	s := NewServerWith(Config{MaxConcurrent: 1, MaxJobs: 2})
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[1] = &Job{ID: 1, State: "running"}
	s.jobs[2] = &Job{ID: 2, State: "done"}
	// Poison the done list: a live job's id, a terminal id, and a stale id.
	s.doneOrder = []int{1, 2, 99}

	if !s.evictLocked() {
		t.Fatal("evictLocked found nothing to evict despite a terminal job")
	}
	if _, alive := s.jobs[1]; !alive {
		t.Fatal("evictLocked evicted a running job")
	}
	if _, gone := s.jobs[2]; gone {
		t.Fatal("evictLocked kept the terminal job instead")
	}
	if len(s.doneOrder) != 1 || s.doneOrder[0] != 1 {
		t.Fatalf("done list after eviction = %v, want the live id retained", s.doneOrder)
	}

	// Once the live job reaches a terminal state it becomes evictable.
	s.jobs[1].State = "failed"
	s.jobs[3], s.jobs[4] = &Job{ID: 3, State: "queued"}, &Job{ID: 4, State: "queued"}
	if s.evictLocked() {
		t.Fatal("store should still be over capacity after evicting job 1")
	}
	if _, alive := s.jobs[1]; alive {
		t.Fatal("terminal job survived eviction under pressure")
	}
}
