package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/hotspot"
)

// stubTune swaps the server's tuning function for the test's lifetime.
func stubTune(t *testing.T, fn func(ctx context.Context, opts hotspot.Options) (*hotspot.Result, error)) {
	t.Helper()
	old := tuneFn
	tuneFn = fn
	t.Cleanup(func() { tuneFn = old })
}

func newBoundedServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServerWith(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func doDelete(t *testing.T, url string, out any) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func submitAsync(t *testing.T, url string, req TuneRequest) int {
	t.Helper()
	var accepted map[string]int
	if code := postJSON(t, url+"/v1/tune", req, &accepted); code != http.StatusAccepted {
		t.Fatalf("async submit status %d", code)
	}
	return accepted["id"]
}

func pollJob(t *testing.T, url string, id int) Job {
	t.Helper()
	var job Job
	if code := getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", url, id), &job); code != 200 {
		t.Fatalf("job %d poll status %d", id, code)
	}
	return job
}

func TestPanickingJobFailsWithoutKillingServer(t *testing.T) {
	stubTune(t, func(context.Context, hotspot.Options) (*hotspot.Result, error) {
		panic("searcher exploded")
	})
	s, ts := newTestServer(t)

	id := submitAsync(t, ts.URL, TuneRequest{Benchmark: "fop"})
	s.Wait()
	job := pollJob(t, ts.URL, id)
	if job.State != "failed" || !strings.Contains(job.Error, "panic: searcher exploded") {
		t.Fatalf("panicking job should fail with the panic message, got %+v", job)
	}

	// The server survived and still serves requests — including the sync
	// path, where the same recovery applies.
	var sync Job
	if code := postJSON(t, ts.URL+"/v1/tune?sync=1", TuneRequest{Benchmark: "fop"}, &sync); code != 200 {
		t.Fatalf("sync submit after panic: status %d", code)
	}
	if sync.State != "failed" || !strings.Contains(sync.Error, "panic:") {
		t.Fatalf("sync panic should fail the job inline, got %+v", sync)
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{}, 1)
	stubTune(t, func(ctx context.Context, _ hotspot.Options) (*hotspot.Result, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	s, ts := newTestServer(t)

	id := submitAsync(t, ts.URL, TuneRequest{Benchmark: "fop"})
	<-started
	if code := doDelete(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id), nil); code != http.StatusAccepted {
		t.Fatalf("cancel of a running job: status %d", code)
	}
	s.Wait()
	if job := pollJob(t, ts.URL, id); job.State != "canceled" {
		t.Fatalf("job should be canceled, got %+v", job)
	}

	// Canceling a finished job is a conflict.
	if code := doDelete(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id), nil); code != http.StatusConflict {
		t.Errorf("cancel of a terminal job: status %d, want 409", code)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	stubTune(t, func(ctx context.Context, opts hotspot.Options) (*hotspot.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &hotspot.Result{Benchmark: opts.Benchmark}, nil
	})
	s, ts := newBoundedServer(t, Config{MaxConcurrent: 1, MaxJobs: 8})

	first := submitAsync(t, ts.URL, TuneRequest{Benchmark: "fop"})
	second := submitAsync(t, ts.URL, TuneRequest{Benchmark: "fop"})

	// The single worker holds the first job, so the second is still queued
	// and cancels instantly.
	var job Job
	if code := doDelete(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, second), &job); code != 200 {
		t.Fatalf("cancel of a queued job: status %d", code)
	}
	if job.State != "canceled" {
		t.Fatalf("queued job should cancel immediately, got %+v", job)
	}
	close(release)
	s.Wait()
	if job := pollJob(t, ts.URL, first); job.State != "done" {
		t.Errorf("first job should finish normally, got %+v", job)
	}
}

func TestConcurrencyCapHolds(t *testing.T) {
	var cur, max int64
	stubTune(t, func(context.Context, hotspot.Options) (*hotspot.Result, error) {
		c := atomic.AddInt64(&cur, 1)
		for {
			m := atomic.LoadInt64(&max)
			if c <= m || atomic.CompareAndSwapInt64(&max, m, c) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		atomic.AddInt64(&cur, -1)
		return &hotspot.Result{}, nil
	})
	s, ts := newBoundedServer(t, Config{MaxConcurrent: 2, MaxJobs: 64})

	for i := 0; i < 8; i++ {
		submitAsync(t, ts.URL, TuneRequest{Benchmark: "fop"})
	}
	s.Wait()
	if got := atomic.LoadInt64(&max); got != 2 {
		t.Errorf("8 jobs on a 2-session pool ran %d concurrently, want exactly 2", got)
	}
}

func TestJobStoreEvictsOldestFinished(t *testing.T) {
	stubTune(t, func(context.Context, hotspot.Options) (*hotspot.Result, error) {
		return &hotspot.Result{}, nil
	})
	s, ts := newBoundedServer(t, Config{MaxConcurrent: 2, MaxJobs: 3})

	for i := 0; i < 3; i++ {
		submitAsync(t, ts.URL, TuneRequest{Benchmark: "fop"})
	}
	s.Wait()
	for i := 0; i < 2; i++ {
		submitAsync(t, ts.URL, TuneRequest{Benchmark: "fop"})
	}
	s.Wait()

	var jobs []Job
	if code := getJSON(t, ts.URL+"/v1/jobs", &jobs); code != 200 {
		t.Fatal("jobs list failed")
	}
	if len(jobs) > 3 {
		t.Errorf("store holds %d jobs, cap is 3", len(jobs))
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/1", nil); code != 404 {
		t.Errorf("oldest finished job should be evicted, got status %d", code)
	}
	if job := pollJob(t, ts.URL, 5); job.State != "done" {
		t.Errorf("newest job should be retained: %+v", job)
	}
}

func TestFullStoreOfActiveJobsRejects(t *testing.T) {
	release := make(chan struct{})
	stubTune(t, func(ctx context.Context, _ hotspot.Options) (*hotspot.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &hotspot.Result{}, nil
	})
	s, ts := newBoundedServer(t, Config{MaxConcurrent: 1, MaxJobs: 2})

	submitAsync(t, ts.URL, TuneRequest{Benchmark: "fop"}) // running
	submitAsync(t, ts.URL, TuneRequest{Benchmark: "fop"}) // queued

	// Every stored job is active: nothing can be evicted.
	if code := postJSON(t, ts.URL+"/v1/tune", TuneRequest{Benchmark: "fop"}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("submit to a full store of active jobs: status %d, want 503", code)
	}

	close(release)
	s.Wait()
	// Finished jobs are evictable, so submission works again.
	id := submitAsync(t, ts.URL, TuneRequest{Benchmark: "fop"})
	s.Wait()
	if job := pollJob(t, ts.URL, id); job.State != "done" {
		t.Errorf("post-eviction job should run: %+v", job)
	}
}

func TestJobReportsLiveProgress(t *testing.T) {
	reported := make(chan struct{})
	release := make(chan struct{})
	stubTune(t, func(ctx context.Context, opts hotspot.Options) (*hotspot.Result, error) {
		opts.OnProgress(hotspot.Progress{Trials: 1, ElapsedMinutes: 0.5, BestWall: 10})
		opts.OnProgress(hotspot.Progress{Trials: 7, ElapsedMinutes: 3, BestWall: 9, ImprovementPct: 10})
		close(reported)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &hotspot.Result{}, nil
	})
	s, ts := newTestServer(t)

	id := submitAsync(t, ts.URL, TuneRequest{Benchmark: "fop"})
	<-reported
	job := pollJob(t, ts.URL, id)
	if job.State != "running" {
		t.Fatalf("job should still be running, got %+v", job)
	}
	if job.Progress == nil || job.Progress.Trials != 7 || job.Progress.ImprovementPct != 10 {
		t.Fatalf("live progress missing or stale: %+v", job.Progress)
	}
	close(release)
	s.Wait()
}

func TestShutdownRejectsAndCancelsStragglers(t *testing.T) {
	started := make(chan struct{}, 1)
	stubTune(t, func(ctx context.Context, _ hotspot.Options) (*hotspot.Result, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	s, ts := newBoundedServer(t, Config{MaxConcurrent: 1, MaxJobs: 4})

	id := submitAsync(t, ts.URL, TuneRequest{Benchmark: "fop"})
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// The job never finishes on its own, so the deadline forces cancellation.
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown past its grace period should report the deadline, got %v", err)
	}
	if job := pollJob(t, ts.URL, id); job.State != "canceled" {
		t.Errorf("straggler should be canceled at shutdown, got %+v", job)
	}
	if code := postJSON(t, ts.URL+"/v1/tune", TuneRequest{Benchmark: "fop"}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown: status %d, want 503", code)
	}
}
