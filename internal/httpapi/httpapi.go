// Package httpapi exposes the auto-tuner as an HTTP service: a tuning farm
// front-end where clients submit budgeted tuning jobs and poll for results.
// Jobs run asynchronously (tuning sessions are CPU-bound on the simulator,
// but a 200-minute virtual session is still tens of real milliseconds, so
// the API also supports synchronous mode for convenience).
//
// Routes:
//
//	GET  /v1/benchmarks          list the built-in workloads
//	GET  /v1/searchers           list the search strategies
//	POST /v1/tune                submit a job; ?sync=1 waits and returns it
//	GET  /v1/jobs                list jobs
//	GET  /v1/jobs/{id}           job status and, when done, the result
//	POST /v1/measure             evaluate one flag set on one benchmark
//
// All bodies are JSON. The service is self-contained and uses only the
// standard library.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/hotspot"
)

// TuneRequest is the body of POST /v1/tune.
type TuneRequest struct {
	Benchmark     string  `json:"benchmark"`
	Searcher      string  `json:"searcher,omitempty"`
	BudgetMinutes float64 `json:"budget_minutes,omitempty"`
	Reps          int     `json:"reps,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	Workers       int     `json:"workers,omitempty"`
}

// Job is the server's view of one tuning request.
type Job struct {
	ID      int             `json:"id"`
	State   string          `json:"state"` // "running" | "done" | "failed"
	Request TuneRequest     `json:"request"`
	Error   string          `json:"error,omitempty"`
	Result  *hotspot.Result `json:"result,omitempty"`
}

// MeasureRequest is the body of POST /v1/measure.
type MeasureRequest struct {
	Benchmark string   `json:"benchmark"`
	Args      []string `json:"args"`
	Rep       int      `json:"rep,omitempty"`
}

// MeasureResponse is the reply of POST /v1/measure.
type MeasureResponse struct {
	WallSeconds float64 `json:"wall_seconds"`
}

// Server is the HTTP front-end. Create with NewServer; it implements
// http.Handler.
type Server struct {
	mux *http.ServeMux

	mu     sync.Mutex
	nextID int
	jobs   map[int]*Job
	done   sync.WaitGroup
}

// NewServer builds a ready-to-serve handler.
func NewServer() *Server {
	s := &Server{mux: http.NewServeMux(), jobs: map[int]*Job{}, nextID: 1}
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /v1/searchers", s.handleSearchers)
	s.mux.HandleFunc("POST /v1/tune", s.handleTune)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("POST /v1/measure", s.handleMeasure)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Wait blocks until all asynchronous jobs have finished — for tests and
// graceful shutdown.
func (s *Server) Wait() { s.done.Wait() }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, hotspot.Benchmarks())
}

func (s *Server) handleSearchers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, hotspot.Searchers())
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	var req TuneRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Benchmark == "" {
		writeError(w, http.StatusBadRequest, "benchmark is required")
		return
	}
	// Validate cheaply before accepting the job.
	if !validBenchmark(req.Benchmark) {
		writeError(w, http.StatusBadRequest, "unknown benchmark %q", req.Benchmark)
		return
	}

	s.mu.Lock()
	job := &Job{ID: s.nextID, State: "running", Request: req}
	s.nextID++
	s.jobs[job.ID] = job
	s.mu.Unlock()

	run := func() {
		res, err := hotspot.Tune(hotspot.Options{
			Benchmark:     req.Benchmark,
			Searcher:      req.Searcher,
			BudgetMinutes: req.BudgetMinutes,
			Reps:          req.Reps,
			Seed:          req.Seed,
			Workers:       req.Workers,
			Noise:         -1,
		})
		s.mu.Lock()
		defer s.mu.Unlock()
		if err != nil {
			job.State, job.Error = "failed", err.Error()
			return
		}
		job.State, job.Result = "done", res
	}

	if r.URL.Query().Get("sync") == "1" {
		run()
		s.mu.Lock()
		defer s.mu.Unlock()
		writeJSON(w, http.StatusOK, job)
		return
	}
	s.done.Add(1)
	go func() {
		defer s.done.Done()
		run()
	}()
	writeJSON(w, http.StatusAccepted, map[string]int{"id": job.ID})
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for id := 1; id < s.nextID; id++ {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job id")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		writeError(w, http.StatusNotFound, "no job %d", id)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	var req MeasureRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	wall, err := hotspot.Measure(req.Args, req.Benchmark, req.Rep)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "run failed") {
			// The flag combination parsed but the VM failed: that is a
			// legitimate measurement outcome, not a malformed request.
			status = http.StatusUnprocessableEntity
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, MeasureResponse{WallSeconds: wall})
}

func validBenchmark(name string) bool {
	for _, b := range hotspot.Benchmarks() {
		if b == name {
			return true
		}
	}
	return false
}
