// Package httpapi exposes the auto-tuner as an HTTP service: a tuning farm
// front-end where clients submit budgeted tuning jobs and poll for results.
//
// Jobs run asynchronously on a bounded worker pool (Config.MaxConcurrent
// sessions at a time; further jobs wait in a queue), report live progress
// while they run, can be canceled, and survive panicking searchers — a
// panic fails the job, never the server. The job store itself is bounded
// (Config.MaxJobs): once full, the oldest finished jobs are evicted to make
// room, and if every stored job is still active, new submissions are
// rejected with 503 rather than growing without limit. Tuning sessions are
// CPU-bound on the simulator — a 200-minute virtual session is tens of real
// milliseconds — so the API also supports synchronous mode for convenience.
//
// Routes:
//
//	GET    /v1/benchmarks          list the built-in workloads
//	GET    /v1/searchers           list the search strategies
//	GET    /v1/scenarios           list the named fault-injection scenarios
//	POST   /v1/tune                submit a job; ?sync=1 waits and returns it
//	GET    /v1/jobs                list jobs
//	GET    /v1/jobs/{id}           job status, live progress, and the result
//	GET    /v1/jobs/{id}/trace     a finished job's event trace as JSONL
//	DELETE /v1/jobs/{id}           cancel a queued or running job
//	POST   /v1/measure             evaluate one flag set on one benchmark
//	GET    /metrics                farm metrics in Prometheus text format
//	GET    /v1/trace               the server's job-lifecycle trace as JSONL
//
// Under overload the farm sheds load explicitly instead of queueing without
// bound (see admission.go): submissions bounce with 429 once the accept
// queue passes Config.MaxQueueDepth or a client exceeds its token-bucket
// rate, while polls and cancels — the control class — are never shed.
//
// With Config.TransferDir the farm keeps a cross-workload knowledge base
// (see docs/TRANSFER.md): jobs submitted with "transfer": true warm-start
// their search from the best configurations stored for the nearest workload
// fingerprints and record their winners back for later jobs. Polls on a
// finished transfer job carry the warm-start provenance (priors injected,
// nearest workload and distance, whether the winner was recorded) under
// result.transfer.
//
// # Error responses
//
// Every error body is the JSON envelope {"error": "..."}; load-shed and
// shutdown rejections additionally carry "retry_after_seconds" mirroring
// their Retry-After header. Per route:
//
//	POST /v1/tune
//	    400  malformed body, missing/unknown benchmark, bad chaos plan,
//	         or negative retry_attempts
//	    429  + Retry-After: accept queue full (async submissions), or the
//	         client exceeded its submission rate (X-Client token bucket)
//	    503  + Retry-After: server shutting down, or the job store is full
//	         of live jobs with nothing evictable
//	    503  journal append failed (durable farms; submission not accepted)
//	GET /v1/jobs/{id}, DELETE /v1/jobs/{id}, GET /v1/jobs/{id}/trace
//	    400  non-numeric job id
//	    404  no such job (never submitted, or evicted)
//	    409  cancel of an already-terminal job; trace of a still-live job
//	POST /v1/measure
//	    400  malformed body, unknown benchmark, or malformed flags
//	    422  flags parsed but the simulated VM failed to run them — a
//	         legitimate measurement outcome, not a malformed request
//	    429  + Retry-After: client exceeded its submission rate
//
// With Config.EnablePprof the net/http/pprof profiling handlers are also
// mounted under /debug/pprof/ (off by default: profiling endpoints leak
// internals and cost CPU, so production deployments opt in explicitly).
//
// With Config.StateDir the farm is durable (see durable.go): lifecycle
// transitions are journaled ahead of taking effect and running jobs
// checkpoint their tuning sessions, so a restarted server serves finished
// results from disk and resumes interrupted jobs mid-search.
//
// Every job runs with its own metrics registry and tracer: job polls carry a
// point-in-time snapshot of the job's series, and a finished job's full
// event trace is available at /v1/jobs/{id}/trace. Server-wide farm state
// (queue depth, running sessions, job verdicts) lives in the /metrics
// registry, and job lifecycle transitions stream through an asynchronous
// collector that Shutdown drains — no event is lost on graceful shutdown.
//
// All bodies are JSON. The service is self-contained and uses only the
// standard library.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"

	"repro/hotspot"
	"repro/internal/checkpoint"
	"repro/internal/faultinject"
	"repro/internal/flags"
	"repro/internal/telemetry"
)

// TuneRequest is the body of POST /v1/tune.
type TuneRequest struct {
	Benchmark     string  `json:"benchmark"`
	Searcher      string  `json:"searcher,omitempty"`
	BudgetMinutes float64 `json:"budget_minutes,omitempty"`
	Reps          int     `json:"reps,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	Workers       int     `json:"workers,omitempty"`
	// Chaos runs the job under the deterministic fault-injection layer: a
	// named scenario (GET /v1/scenarios) or a fault-plan DSL spec such as
	// "launch=0.1,spike=0.2". Empty means no injected faults. Job polls
	// then surface retry/flake stats in progress and the final result.
	Chaos string `json:"chaos,omitempty"`
	// RetryAttempts bounds attempts per measurement for transient failures;
	// 0 means the default (3).
	RetryAttempts int `json:"retry_attempts,omitempty"`
	// Hedge enables straggler hedging: trials exceeding a percentile-based
	// virtual deadline are charged as if a duplicate dispatch had finished
	// first (default policy; see core.HedgePolicy).
	Hedge bool `json:"hedge,omitempty"`
	// Quarantine enables the failure circuit breaker: flag-hierarchy
	// subtrees with a high deterministic-failure density are temporarily
	// rejected without spending budget (default policy; see
	// core.QuarantinePolicy).
	Quarantine bool `json:"quarantine,omitempty"`
	// Transfer opts the job into the farm's cross-workload knowledge base
	// (Config.TransferDir; see docs/TRANSFER.md): the session warm-starts
	// from the nearest stored workload fingerprints and records its winner
	// back. Ignored when the farm runs without a transfer store. Polls on a
	// finished job carry the warm-start provenance in result.transfer.
	Transfer bool `json:"transfer,omitempty"`
	// TransferK is the number of nearest stored fingerprints to draw
	// warm-start priors from; 0 means the default (3).
	TransferK int `json:"transfer_k,omitempty"`
	// Drift arms workload-drift detection and live re-tuning for the job
	// (see docs/DRIFT.md): a confirmed score shift opens a new tuning epoch
	// warm-started from the demoted winner (plus transfer priors when the
	// job also sets "transfer"). Polls on the finished job carry the
	// per-epoch breakdown under result.epochs. Pair with a chaos plan that
	// schedules the shift (drift-at=N, drift-midrun, drift-storm).
	Drift bool `json:"drift,omitempty"`
	// DriftSensitivity scales the drift detector's decision threshold:
	// 1 (or 0) is the calibrated default, higher fires on weaker evidence.
	// Requires "drift": true.
	DriftSensitivity float64 `json:"drift_sensitivity,omitempty"`
}

// Job is the server's view of one tuning request.
type Job struct {
	ID      int         `json:"id"`
	State   string      `json:"state"` // "queued" | "running" | "done" | "failed" | "canceled"
	Request TuneRequest `json:"request"`
	Error   string      `json:"error,omitempty"`
	// Progress is the live best-so-far snapshot of a running job.
	Progress *hotspot.Progress `json:"progress,omitempty"`
	Result   *hotspot.Result   `json:"result,omitempty"`
	// Telemetry is a point-in-time snapshot of the job's own metric series
	// (runner_*, session_*, and under chaos the chaos_* counters), taken
	// when the job is serialized. Histograms appear as name_count/name_sum.
	Telemetry map[string]float64 `json:"telemetry,omitempty"`

	cancel context.CancelFunc
	tel    *telemetry.Registry
	trace  *telemetry.Tracer
	// requeue marks a job whose cancellation is an interruption, not a
	// verdict (shutdown deadline, simulated crash): its terminal state is
	// kept out of the journal and its checkpoint stays on disk, so a
	// restarted server re-queues and resumes it.
	requeue bool
}

// terminal reports whether the job has reached a final state.
func (j *Job) terminal() bool {
	switch j.State {
	case "done", "failed", "canceled":
		return true
	}
	return false
}

// MeasureRequest is the body of POST /v1/measure.
type MeasureRequest struct {
	Benchmark string   `json:"benchmark"`
	Args      []string `json:"args"`
	Rep       int      `json:"rep,omitempty"`
}

// MeasureResponse is the reply of POST /v1/measure.
type MeasureResponse struct {
	WallSeconds float64 `json:"wall_seconds"`
}

// Config bounds the server's resources.
type Config struct {
	// MaxConcurrent is the number of tuning sessions run simultaneously;
	// further accepted jobs wait in the queue. Default 4.
	MaxConcurrent int
	// MaxJobs caps the job store (and the queue). When the store is full,
	// the oldest finished jobs are evicted; if every job is still queued or
	// running, new submissions are rejected with 503. Default 256.
	MaxJobs int
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/.
	// Off by default: profiling endpoints expose internals and burn CPU, so
	// deployments opt in (the tuned binary's -pprof flag).
	EnablePprof bool
	// StateDir makes the farm durable: job submissions, transitions, and
	// results are journaled there ahead of taking effect, and every running
	// job checkpoints its tuning session to its own file in the directory.
	// A restarted server replays the journal — finished results are served
	// from disk, interrupted jobs are re-queued and resume from their
	// checkpoints. Empty (the default) keeps the farm purely in-memory.
	// Durable deployments should construct with NewDurableServer.
	StateDir string
	// CheckpointEveryTrials is the per-job checkpoint cadence when StateDir
	// is set; 0 means the checkpoint package default.
	CheckpointEveryTrials int
	// MaxQueueDepth bounds the accept queue for async submissions: once
	// this many jobs are waiting (not yet running), further POST /v1/tune
	// requests are shed with 429 + Retry-After instead of queueing. 0 means
	// MaxJobs (the queue's physical capacity); negative disables the check.
	MaxQueueDepth int
	// ClientRatePerSec enables per-client token-bucket fairness on the
	// submission class (POST /v1/tune and /v1/measure), keyed by the
	// X-Client header: each client accrues this many submissions per
	// second, and a dry bucket sheds with 429 + Retry-After. 0 (default)
	// disables rate limiting.
	ClientRatePerSec float64
	// ClientBurst is the token-bucket capacity per client; 0 means
	// max(1, ceil(ClientRatePerSec)).
	ClientBurst int
	// JournalCompactBytes is the farm-journal size (bytes) past which a
	// durable server compacts: the append history is rewritten as the
	// minimal record stream reproducing the live job store. 0 means the
	// default (1 MiB); negative disables compaction.
	JournalCompactBytes int64
	// Nodes, when non-empty, runs every tuning session against this fleet
	// of evald evaluator nodes ("host:port" or URLs) instead of measuring
	// in-process: tuned becomes the control plane of the distributed
	// evaluation plane (see docs/DISTRIBUTED.md). Results for a fixed seed
	// are byte-identical either way. With StateDir, each job additionally
	// journals its fleet view next to its checkpoint.
	Nodes []string
	// DispatchBatch ships up to this many trials per evaluate-batch round
	// trip to the fleet; 0 means one POST per trial. Transport-only: job
	// results are byte-identical at any batch size.
	DispatchBatch int
	// TLSCert/TLSKey/TLSCA and AuthToken secure the fleet wire (mutual
	// TLS plus a shared bearer token, both fail-closed); they apply to
	// every job's dispatch. See docs/DISTRIBUTED.md.
	TLSCert, TLSKey, TLSCA string
	AuthToken              string
	// TransferDir, when non-empty, gives the farm a cross-workload
	// knowledge base (see docs/TRANSFER.md): jobs that set
	// TuneRequest.Transfer warm-start their search from it and record
	// their winners into it. Empty disables transfer for every job.
	TransferDir string
}

// DefaultConfig returns the default resource bounds.
func DefaultConfig() Config { return Config{MaxConcurrent: 4, MaxJobs: 256} }

// tuneFn runs one tuning session. It is a variable so tests can substitute
// slow, failing, or panicking implementations.
var tuneFn = hotspot.TuneContext

// Server is the HTTP front-end. Create with NewServer or NewServerWith; it
// implements http.Handler.
type Server struct {
	mux     *http.ServeMux
	cfg     Config
	queue   chan *Job
	workers sync.WaitGroup // the worker pool goroutines

	// reg holds the server-wide farm metrics served at /metrics; evTrace
	// records job lifecycle transitions, fed through the events channel by
	// an asynchronous collector so handlers never block on trace writes.
	// Shutdown closes the channel and waits the collector out, so a
	// graceful shutdown loses no events; late events (rejections during
	// shutdown) fall back to a synchronous Emit.
	reg      *telemetry.Registry
	evTrace  *telemetry.Tracer
	events   chan telemetry.Event
	evWG     sync.WaitGroup
	evMu     sync.RWMutex
	evClosed bool

	mu        sync.Mutex
	closed    bool
	crashed   bool // Crash() fired: suppress terminal journaling and checkpoint removal
	nextID    int
	jobs      map[int]*Job
	doneOrder []int          // terminal job IDs, oldest first — the LRU eviction order
	inflight  sync.WaitGroup // accepted jobs that have not reached a terminal state

	// stateDir and journal are the durability layer (see durable.go); both
	// are zero for an in-memory server. journal writes are guarded by mu.
	stateDir     string
	journal      *checkpoint.Journal
	compactBytes int64 // journal size that triggers compaction; ≤0 disables

	// admit and maxQueueDepth are the overload controls (see admission.go).
	admit         *admission
	maxQueueDepth int
}

// NewServer builds a ready-to-serve handler with default bounds.
func NewServer() *Server { return NewServerWith(DefaultConfig()) }

// NewServerWith builds a ready-to-serve handler with the given bounds and
// starts its worker pool. It panics if cfg.StateDir is set and recovery
// fails; durable deployments should call NewDurableServer and handle the
// error (an in-memory config can never fail).
func NewServerWith(cfg Config) *Server {
	s, err := NewDurableServer(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// routes mounts the handler table. Every route is tagged with a priority
// class: "submit" creates work and passes through admission control,
// "control" observes or cancels work already accepted and is never shed —
// an overloaded farm must stay steerable.
func (s *Server) routes() {
	cfg := s.cfg
	handle := func(class, pattern string, h http.HandlerFunc) {
		counter := s.reg.Counter(`httpapi_requests_total{class="` + class + `"}`)
		s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			counter.Inc()
			h(w, r)
		})
	}
	handle("control", "GET /v1/benchmarks", s.handleBenchmarks)
	handle("control", "GET /v1/searchers", s.handleSearchers)
	handle("control", "GET /v1/scenarios", s.handleScenarios)
	handle("submit", "POST /v1/tune", s.handleTune)
	handle("control", "GET /v1/jobs", s.handleJobs)
	handle("control", "GET /v1/jobs/{id}", s.handleJob)
	handle("control", "GET /v1/jobs/{id}/trace", s.handleJobTrace)
	handle("control", "DELETE /v1/jobs/{id}", s.handleCancel)
	handle("submit", "POST /v1/measure", s.handleMeasure)
	handle("control", "GET /metrics", s.handleMetrics)
	handle("control", "GET /v1/trace", s.handleTrace)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// noteJob streams one job lifecycle transition to the collector. After the
// collector is closed (shutdown), the event is committed synchronously so
// nothing is ever dropped.
func (s *Server) noteJob(id int, state string) {
	ev := telemetry.Event{Kind: "job", Trial: id, Detail: state}
	s.evMu.RLock()
	if !s.evClosed {
		s.events <- ev
		s.evMu.RUnlock()
		return
	}
	s.evMu.RUnlock()
	s.evTrace.Emit(ev)
}

// drainEvents closes the lifecycle-event collector and waits until every
// queued event has been committed to the trace buffer.
func (s *Server) drainEvents() {
	s.evMu.Lock()
	if !s.evClosed {
		s.evClosed = true
		close(s.events)
	}
	s.evMu.Unlock()
	s.evWG.Wait()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Wait blocks until every accepted job has reached a terminal state — for
// tests and simple embedders.
func (s *Server) Wait() { s.inflight.Wait() }

// Shutdown gracefully stops the server: new submissions are rejected,
// queued and running jobs are given until ctx's deadline to finish, and
// once the deadline passes the remainder are canceled. On a durable server
// the deadline cancellations are interruptions, not verdicts — the journal
// keeps those jobs non-terminal and their checkpoints stay on disk, so a
// restarted server re-queues and resumes them. It returns ctx's error if
// the deadline forced cancellations, nil otherwise.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		s.workers.Wait()
		close(done)
	}()
	err := func() error {
		select {
		case <-done:
			return nil
		case <-ctx.Done():
			s.mu.Lock()
			for _, j := range s.jobs {
				switch {
				case j.State == "queued":
					j.requeue = s.journal != nil
					j.State, j.Error = "canceled", "server shutdown"
					s.jobTerminalLocked(j)
				case j.cancel != nil:
					j.requeue = s.journal != nil
					j.cancel()
				}
			}
			s.mu.Unlock()
			<-done
			return ctx.Err()
		}
	}()
	s.drainEvents()
	s.mu.Lock()
	journal := s.journal
	s.journal = nil
	s.mu.Unlock()
	_ = journal.Close()
	return err
}

// markTerminalLocked records a job's arrival in a terminal state for LRU
// eviction and releases its Wait ticket. Caller holds s.mu; the job's State
// must already be terminal, and each job passes through exactly once.
func (s *Server) markTerminalLocked(job *Job) {
	s.doneOrder = append(s.doneOrder, job.ID)
	s.inflight.Done()
}

// jobTerminalLocked is markTerminalLocked plus the farm accounting (the
// per-verdict counter and the lifecycle trace event) and, on a durable
// server, the journal verdict. A cancellation flagged as an interruption
// (shutdown deadline, simulated crash) is deliberately NOT journaled and
// keeps its checkpoint: the restarted server re-queues and resumes it.
// Caller holds s.mu.
func (s *Server) jobTerminalLocked(job *Job) {
	s.reg.Counter(`httpapi_jobs_total{state="` + job.State + `"}`).Inc()
	s.noteJob(job.ID, job.State)
	interrupted := s.crashed || (job.requeue && job.State == "canceled")
	if !interrupted {
		_ = s.appendJournal(journalRecord{
			Op: opDone, ID: job.ID, State: job.State, Error: job.Error, Result: job.Result,
		})
		s.removeJobCheckpoint(job.ID)
	}
	s.markTerminalLocked(job)
}

// evictLocked drops finished jobs, oldest first, until the store has room.
// Only terminal jobs are ever evicted: a queued or running job that lands
// on the done list by any path (or a stale id) is skipped, never dropped —
// evicting live state would strand its client and orphan its worker.
// Caller holds s.mu. Returns false if the store is still full — every job
// is queued or running.
func (s *Server) evictLocked() bool {
	keep := s.doneOrder[:0]
	for _, id := range s.doneOrder {
		job, ok := s.jobs[id]
		switch {
		case !ok:
			// Stale entry: the job is already gone from the store.
		case !job.terminal():
			keep = append(keep, id)
		case len(s.jobs) >= s.cfg.MaxJobs:
			delete(s.jobs, id)
			_ = s.appendJournal(journalRecord{Op: opEvict, ID: id})
			s.removeJobCheckpoint(id)
			s.reg.Counter("httpapi_jobs_evicted_total").Inc()
		default:
			keep = append(keep, id)
		}
	}
	s.doneOrder = keep
	return len(s.jobs) < s.cfg.MaxJobs
}

// runJob executes one tuning job: on a pool worker for async submissions,
// inline for ?sync=1.
func (s *Server) runJob(job *Job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	s.mu.Lock()
	if job.State != "queued" {
		// Canceled (or evicted and canceled) while waiting in the queue.
		s.mu.Unlock()
		return
	}
	job.State = "running"
	job.cancel = cancel
	_ = s.appendJournal(journalRecord{Op: opState, ID: job.ID, State: "running"})
	s.reg.Gauge("httpapi_queue_depth").Set(float64(len(s.queue)))
	s.reg.Gauge("httpapi_jobs_running").Inc()
	s.noteJob(job.ID, "running")
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if r := recover(); r != nil {
			// A panicking searcher fails its job, never the server.
			job.State, job.Error = "failed", fmt.Sprintf("panic: %v", r)
		}
		job.cancel = nil
		s.reg.Gauge("httpapi_jobs_running").Dec()
		s.jobTerminalLocked(job)
	}()

	req := job.Request
	opts := hotspot.Options{
		Benchmark:        req.Benchmark,
		Searcher:         req.Searcher,
		BudgetMinutes:    req.BudgetMinutes,
		Reps:             req.Reps,
		Seed:             req.Seed,
		Workers:          req.Workers,
		Chaos:            req.Chaos,
		RetryAttempts:    req.RetryAttempts,
		Hedge:            req.Hedge,
		Quarantine:       req.Quarantine,
		Drift:            req.Drift,
		DriftSensitivity: req.DriftSensitivity,
		Nodes:            s.cfg.Nodes,
		DispatchBatch:    s.cfg.DispatchBatch,
		TLSCert:          s.cfg.TLSCert,
		TLSKey:           s.cfg.TLSKey,
		TLSCA:            s.cfg.TLSCA,
		AuthToken:        s.cfg.AuthToken,
		Noise:            -1,
		Telemetry:        job.tel,
		Trace:            job.trace,
		OnProgress: func(p hotspot.Progress) {
			s.mu.Lock()
			// Replace the pointer rather than mutating through it: job
			// snapshots taken for serialization stay consistent.
			job.Progress = &p
			s.mu.Unlock()
		},
	}
	if req.Transfer && s.cfg.TransferDir != "" {
		opts.TransferDir = s.cfg.TransferDir
		opts.TransferK = req.TransferK
	}
	s.durableOptions(&opts, job.ID)
	res, err := tuneFn(ctx, opts)
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err != nil && ctx.Err() != nil:
		job.State, job.Error = "canceled", err.Error()
	case err != nil:
		job.State, job.Error = "failed", err.Error()
	default:
		job.State, job.Result = "done", res
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, hotspot.Benchmarks())
}

func (s *Server) handleSearchers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, hotspot.Searchers())
}

func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, hotspot.ChaosScenarios())
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	sync := r.URL.Query().Get("sync") == "1"
	// Admission runs before the body is even decoded: shedding is about
	// protecting the farm, and a farm drowning in submissions should not
	// spend cycles parsing the ones it is about to bounce. Synchronous
	// submissions occupy a worker inline, never a queue slot, so only the
	// rate limit applies to them.
	if !s.admitSubmission(w, r, !sync) {
		return
	}
	var req TuneRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Benchmark == "" {
		writeError(w, http.StatusBadRequest, "benchmark is required")
		return
	}
	// Validate cheaply before accepting the job.
	if !validBenchmark(req.Benchmark) {
		writeError(w, http.StatusBadRequest, "unknown benchmark %q", req.Benchmark)
		return
	}
	if _, err := faultinject.ParsePlan(req.Chaos); err != nil {
		writeError(w, http.StatusBadRequest, "bad chaos plan: %v", err)
		return
	}
	if req.RetryAttempts < 0 {
		writeError(w, http.StatusBadRequest, "retry_attempts must be ≥ 0")
		return
	}
	if req.DriftSensitivity != 0 && !req.Drift {
		writeError(w, http.StatusBadRequest, "drift_sensitivity requires drift")
		return
	}
	if req.DriftSensitivity < 0 {
		writeError(w, http.StatusBadRequest, "drift_sensitivity must be > 0")
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.reg.Counter(`httpapi_shed_total{reason="shutdown"}`).Inc()
		writeShed(w, http.StatusServiceUnavailable, 1, "server is shutting down")
		return
	}
	if len(s.jobs) >= s.cfg.MaxJobs && !s.evictLocked() {
		n := len(s.jobs)
		s.mu.Unlock()
		s.reg.Counter(`httpapi_shed_total{reason="store-full"}`).Inc()
		writeShed(w, http.StatusServiceUnavailable, 1+n/s.cfg.MaxConcurrent,
			"job store full: %d jobs queued or running", n)
		return
	}
	job := &Job{
		ID: s.nextID, State: "queued", Request: req,
		tel:   telemetry.New(),
		trace: telemetry.NewTracer(0),
	}
	// Write-ahead: the submission reaches the journal before the job store,
	// so a job either durably exists or was never accepted. On append
	// failure the id is not consumed and the client is told to retry.
	if err := s.appendJournal(journalRecord{Op: opSubmit, ID: job.ID, Request: &req}); err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "journal append failed: %v", err)
		return
	}
	s.nextID++
	s.jobs[job.ID] = job
	s.inflight.Add(1)
	if !sync {
		select {
		case s.queue <- job:
		default:
			// Cannot happen while the store cap holds the queue below its
			// capacity, but never block a handler on a full channel.
			delete(s.jobs, job.ID)
			s.inflight.Done()
			s.mu.Unlock()
			s.reg.Counter(`httpapi_shed_total{reason="queue-full"}`).Inc()
			writeShed(w, http.StatusTooManyRequests, 1, "job queue full")
			return
		}
	}
	s.reg.Counter("httpapi_jobs_submitted_total").Inc()
	s.reg.Gauge("httpapi_queue_depth").Set(float64(len(s.queue)))
	s.noteJob(job.ID, "submitted")
	s.mu.Unlock()

	if sync {
		s.runJob(job)
		s.mu.Lock()
		snap := s.snapshotLocked(job)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, snap)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]int{"id": job.ID})
}

// snapshotLocked copies a job for serialization, attaching a point-in-time
// snapshot of its metric series. Caller holds s.mu.
func (s *Server) snapshotLocked(job *Job) Job {
	snap := *job
	if job.tel != nil {
		snap.Telemetry = job.tel.Snapshot()
	}
	return snap
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// handleTrace serves the server's job-lifecycle trace as JSONL.
func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/jsonl")
	_ = s.evTrace.WriteJSONL(w)
}

// handleJobTrace serves a finished job's full event trace as JSONL. Running
// jobs conflict: exporting flushes the tracer's pending groups, which would
// corrupt the live session's event stream.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job id")
		return
	}
	s.mu.Lock()
	job, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no job %d", id)
		return
	}
	if !job.terminal() {
		state := job.State
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "job %d is still %s; trace is available once it finishes", id, state)
		return
	}
	trace := job.trace
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/jsonl")
	_ = trace.WriteJSONL(w)
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]Job, 0, len(s.jobs))
	for id := 1; id < s.nextID; id++ {
		if j, ok := s.jobs[id]; ok {
			out = append(out, s.snapshotLocked(j))
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job id")
		return
	}
	s.mu.Lock()
	job, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no job %d", id)
		return
	}
	snap := s.snapshotLocked(job)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job id")
		return
	}
	s.mu.Lock()
	job, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no job %d", id)
		return
	}
	switch job.State {
	case "queued":
		// Not started: cancel immediately. The worker that eventually pops
		// it from the queue skips it.
		job.State, job.Error = "canceled", "canceled before start"
		s.jobTerminalLocked(job)
		snap := s.snapshotLocked(job)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, snap)
	case "running":
		cancel := job.cancel
		snap := s.snapshotLocked(job)
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		// Cancellation is asynchronous: the session stops at its next
		// evaluation round; poll the job until its state is "canceled".
		writeJSON(w, http.StatusAccepted, snap)
	default:
		state := job.State
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "job %d already %s", id, state)
	}
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	// Measurements are submission-class work (they burn simulator CPU) but
	// run inline, so only the per-client rate limit applies.
	if !s.admitSubmission(w, r, false) {
		return
	}
	var req MeasureRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	wall, err := hotspot.Measure(req.Args, req.Benchmark, req.Rep)
	if err != nil {
		status := http.StatusBadRequest
		var unknown *flags.UnknownFlagError
		switch {
		case errors.As(err, &unknown):
			// A flag name the registry does not define is a malformed
			// submission, full stop — the typed error guarantees the worker
			// rejected it instead of panicking partway into a run.
			status = http.StatusBadRequest
		case strings.Contains(err.Error(), "run failed"):
			// The flag combination parsed but the VM failed: that is a
			// legitimate measurement outcome, not a malformed request.
			status = http.StatusUnprocessableEntity
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, MeasureResponse{WallSeconds: wall})
}

func validBenchmark(name string) bool {
	for _, b := range hotspot.Benchmarks() {
		if b == name {
			return true
		}
	}
	return false
}
