package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/hotspot"
	"repro/internal/flags"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestListEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	var benches []string
	if code := getJSON(t, ts.URL+"/v1/benchmarks", &benches); code != 200 {
		t.Fatalf("benchmarks status %d", code)
	}
	if len(benches) != 29 {
		t.Errorf("expected 29 benchmarks, got %d", len(benches))
	}
	var searchers []string
	if code := getJSON(t, ts.URL+"/v1/searchers", &searchers); code != 200 {
		t.Fatal("searchers endpoint failed")
	}
	if len(searchers) == 0 || searchers[0] != "hierarchical" {
		t.Errorf("searchers: %v", searchers)
	}
	var scenarios []string
	if code := getJSON(t, ts.URL+"/v1/scenarios", &scenarios); code != 200 {
		t.Fatal("scenarios endpoint failed")
	}
	found := false
	for _, sc := range scenarios {
		found = found || sc == "unstable-farm"
	}
	if !found {
		t.Errorf("scenarios missing unstable-farm: %v", scenarios)
	}
}

func TestTuneChaosJob(t *testing.T) {
	_, ts := newTestServer(t)
	var job Job
	code := postJSON(t, ts.URL+"/v1/tune?sync=1",
		TuneRequest{Benchmark: "fop", BudgetMinutes: 15, Seed: 7,
			Chaos: "unstable-farm", Workers: 2}, &job)
	if code != 200 {
		t.Fatalf("chaos tune status %d", code)
	}
	if job.State != "done" || job.Result == nil {
		t.Fatalf("chaos job not done: %+v", job)
	}
	if job.Result.Chaos != "unstable-farm" {
		t.Errorf("result chaos plan %q", job.Result.Chaos)
	}
	if job.Result.Flakes == 0 || job.Result.Attempts <= job.Result.Trials {
		t.Errorf("an unstable farm should have flaked: flakes=%d attempts=%d trials=%d",
			job.Result.Flakes, job.Result.Attempts, job.Result.Trials)
	}
	// Same request, same seed: the flake accounting reproduces exactly.
	var again Job
	if code := postJSON(t, ts.URL+"/v1/tune?sync=1",
		TuneRequest{Benchmark: "fop", BudgetMinutes: 15, Seed: 7,
			Chaos: "unstable-farm", Workers: 2}, &again); code != 200 {
		t.Fatalf("repeat chaos tune status %d", code)
	}
	if again.Result.Flakes != job.Result.Flakes ||
		again.Result.BestWall != job.Result.BestWall ||
		again.Result.ElapsedMinutes != job.Result.ElapsedMinutes {
		t.Errorf("chaos job not reproducible: %+v vs %+v", job.Result, again.Result)
	}
}

func TestTuneSync(t *testing.T) {
	_, ts := newTestServer(t)
	var job Job
	code := postJSON(t, ts.URL+"/v1/tune?sync=1",
		TuneRequest{Benchmark: "fop", BudgetMinutes: 15, Seed: 1}, &job)
	if code != 200 {
		t.Fatalf("sync tune status %d", code)
	}
	if job.State != "done" || job.Result == nil {
		t.Fatalf("job not done: %+v", job)
	}
	if job.Result.ImprovementPct < 0 {
		t.Error("negative improvement")
	}
	if job.Result.Benchmark != "fop" {
		t.Errorf("result for %q", job.Result.Benchmark)
	}
}

func TestTuneAsyncAndPoll(t *testing.T) {
	s, ts := newTestServer(t)
	var accepted map[string]int
	code := postJSON(t, ts.URL+"/v1/tune",
		TuneRequest{Benchmark: "startup.scimark.fft", BudgetMinutes: 10, Seed: 2}, &accepted)
	if code != http.StatusAccepted {
		t.Fatalf("async tune status %d", code)
	}
	id := accepted["id"]
	if id == 0 {
		t.Fatal("no job id returned")
	}
	s.Wait() // deterministic test: wait for the worker

	var job Job
	if code := getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id), &job); code != 200 {
		t.Fatalf("job poll status %d", code)
	}
	if job.State != "done" {
		t.Fatalf("job state %q (%s)", job.State, job.Error)
	}

	var jobs []Job
	if code := getJSON(t, ts.URL+"/v1/jobs", &jobs); code != 200 || len(jobs) != 1 {
		t.Fatalf("jobs list: %d, %d jobs", code, len(jobs))
	}
}

func TestTuneValidation(t *testing.T) {
	_, ts := newTestServer(t)
	if code := postJSON(t, ts.URL+"/v1/tune", TuneRequest{}, nil); code != 400 {
		t.Errorf("missing benchmark: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/tune", TuneRequest{Benchmark: "nope"}, nil); code != 400 {
		t.Errorf("unknown benchmark: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/tune",
		TuneRequest{Benchmark: "fop", Chaos: "launch=2"}, nil); code != 400 {
		t.Errorf("bad chaos plan: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/tune",
		TuneRequest{Benchmark: "fop", RetryAttempts: -1}, nil); code != 400 {
		t.Errorf("negative retry_attempts: status %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/tune", "application/json", strings.NewReader("{garbage"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("garbage body: status %d", resp.StatusCode)
	}
}

func TestTuneBadSearcherFailsJob(t *testing.T) {
	_, ts := newTestServer(t)
	var job Job
	code := postJSON(t, ts.URL+"/v1/tune?sync=1",
		TuneRequest{Benchmark: "fop", Searcher: "nope"}, &job)
	if code != 200 || job.State != "failed" || job.Error == "" {
		t.Errorf("bad searcher should fail the job: %d %+v", code, job)
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t)
	if code := getJSON(t, ts.URL+"/v1/jobs/999", nil); code != 404 {
		t.Errorf("missing job: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/abc", nil); code != 400 {
		t.Errorf("bad job id: status %d", code)
	}
}

func TestMeasureEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var def, big MeasureResponse
	if code := postJSON(t, ts.URL+"/v1/measure",
		MeasureRequest{Benchmark: "h2"}, &def); code != 200 {
		t.Fatalf("measure status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/measure",
		MeasureRequest{Benchmark: "h2", Args: []string{"-Xmx4g", "-Xms4g"}}, &big); code != 200 {
		t.Fatalf("measure status %d", code)
	}
	if big.WallSeconds >= def.WallSeconds {
		t.Error("4g heap should beat defaults on h2")
	}
	// A crashing combination is a 422, not a 400.
	if code := postJSON(t, ts.URL+"/v1/measure",
		MeasureRequest{Benchmark: "h2", Args: []string{"-Xmx128m"}}, nil); code != 422 {
		t.Errorf("OOM measure: status %d", code)
	}
	// A malformed flag is a 400.
	if code := postJSON(t, ts.URL+"/v1/measure",
		MeasureRequest{Benchmark: "h2", Args: []string{"-XX:+NoSuch"}}, nil); code != 400 {
		t.Errorf("bad flag: status %d", code)
	}
}

// Regression: a submission naming a flag the registry does not define must
// come back as a typed validation failure — a 400 with the JSON error
// envelope — and must never panic a worker. Config.Set's panic-on-unknown
// sibling (MustSet-style accessors) used to be one missed validation away
// from network input.
func TestMeasureUnknownFlagIsTyped400(t *testing.T) {
	_, ts := newTestServer(t)
	for _, args := range [][]string{
		{"-XX:BogusFlagName=17"},
		{"-XX:+TotallyMadeUp"},
		{"-XX:-AlsoNotReal"},
	} {
		var envelope map[string]string
		code := postJSON(t, ts.URL+"/v1/measure",
			MeasureRequest{Benchmark: "h2", Args: args}, &envelope)
		if code != 400 {
			t.Errorf("args %v: status %d, want 400", args, code)
		}
		if !strings.Contains(envelope["error"], "unrecognized VM option") {
			t.Errorf("args %v: error envelope %q lacks the VM diagnostic", args, envelope)
		}
	}
	// The same typed error is observable below the HTTP layer.
	_, err := hotspot.Measure([]string{"-XX:BogusFlagName=17"}, "h2", 0)
	var unknown *flags.UnknownFlagError
	if !errors.As(err, &unknown) || unknown.Name != "BogusFlagName" {
		t.Fatalf("Measure error %v is not a typed UnknownFlagError", err)
	}
	// The worker survived: a well-formed request still answers.
	if code := postJSON(t, ts.URL+"/v1/measure",
		MeasureRequest{Benchmark: "h2"}, nil); code != 200 {
		t.Fatalf("server unhealthy after bad submissions: status %d", code)
	}
}

func TestResultRoundTripsThroughJSON(t *testing.T) {
	// The job's embedded hotspot.Result must serialize usefully: command
	// line, improvement, trace.
	_, ts := newTestServer(t)
	var job Job
	postJSON(t, ts.URL+"/v1/tune?sync=1",
		TuneRequest{Benchmark: "startup.xml.validation", BudgetMinutes: 20, Seed: 3}, &job)
	if job.Result == nil {
		t.Fatal("no result")
	}
	if len(job.Result.CommandLine) == 0 {
		t.Error("command line missing from JSON result")
	}
	if len(job.Result.Trace) == 0 {
		t.Error("trace missing from JSON result")
	}
	var r hotspot.Result = *job.Result
	if r.Collector == "" {
		t.Error("collector missing")
	}
}
