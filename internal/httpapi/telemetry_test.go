package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// smallJob is a real (un-stubbed) tuning request that finishes in
// milliseconds of wall time.
func smallJob() TuneRequest {
	return TuneRequest{Benchmark: "fop", BudgetMinutes: 10, Reps: 1, Seed: 3, Workers: 2}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var job Job
	if code := postJSON(t, ts.URL+"/v1/tune?sync=1", smallJob(), &job); code != 200 {
		t.Fatalf("sync tune status %d", code)
	}
	code, body := getBody(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE httpapi_jobs_submitted_total counter",
		"httpapi_jobs_submitted_total 1",
		`httpapi_jobs_total{state="done"} 1`,
		"# TYPE httpapi_workers gauge",
		"httpapi_workers 4",
		"httpapi_jobs_running 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}

func TestPprofRoutesGatedByConfig(t *testing.T) {
	// Absent by default: profiling endpoints must be an explicit opt-in.
	_, plain := newTestServer(t)
	if code, _ := getBody(t, plain.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof served without opt-in: status %d", code)
	}

	_, prof := newBoundedServer(t, Config{MaxConcurrent: 1, MaxJobs: 4, EnablePprof: true})
	code, body := getBody(t, prof.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index not served: status %d", code)
	}
	if code, _ := getBody(t, prof.URL+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof cmdline not served: status %d", code)
	}
}

func TestJobTelemetrySnapshot(t *testing.T) {
	_, ts := newTestServer(t)
	var job Job
	if code := postJSON(t, ts.URL+"/v1/tune?sync=1", smallJob(), &job); code != 200 {
		t.Fatalf("sync tune status %d", code)
	}
	if job.State != "done" || job.Result == nil {
		t.Fatalf("job did not finish: %+v", job)
	}
	if len(job.Telemetry) == 0 {
		t.Fatal("job snapshot carries no telemetry")
	}
	if got := job.Telemetry["session_trials_total"]; got != float64(job.Result.Trials) {
		t.Errorf("session_trials_total = %g, want %d", got, job.Result.Trials)
	}
	if job.Telemetry["runner_measures_total"] < 1 {
		t.Error("runner series missing from the job snapshot")
	}
	if job.Telemetry["session_budget_virtual_seconds"] != 600 {
		t.Errorf("budget gauge = %g, want 600", job.Telemetry["session_budget_virtual_seconds"])
	}

	// The poll endpoint serves the same snapshot.
	polled := pollJob(t, ts.URL, job.ID)
	if len(polled.Telemetry) == 0 {
		t.Error("polled job carries no telemetry")
	}
}

func TestJobTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var job Job
	req := smallJob()
	req.Chaos = "unstable-farm"
	if code := postJSON(t, ts.URL+"/v1/tune?sync=1", req, &job); code != 200 {
		t.Fatalf("sync tune status %d", code)
	}
	code, body := getBody(t, fmt.Sprintf("%s/v1/jobs/%d/trace", ts.URL, job.ID))
	if code != 200 {
		t.Fatalf("job trace status %d: %s", code, body)
	}
	sc := bufio.NewScanner(strings.NewReader(body))
	kinds := map[string]int{}
	for sc.Scan() {
		var ev telemetry.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		kinds[ev.Kind]++
	}
	if kinds[telemetry.EvBaseline] != 1 || kinds[telemetry.EvObserve] == 0 || kinds[telemetry.EvAttempt] == 0 {
		t.Errorf("trace missing expected event kinds: %v", kinds)
	}
	if kinds[telemetry.EvFault] == 0 {
		t.Errorf("chaos session trace carries no fault events: %v", kinds)
	}

	if code, _ := getBody(t, ts.URL+"/v1/jobs/99/trace"); code != http.StatusNotFound {
		t.Errorf("missing job trace status %d, want 404", code)
	}
}

func TestShutdownDrainsLifecycleEventsWithoutLoss(t *testing.T) {
	s, ts := newBoundedServer(t, Config{MaxConcurrent: 2, MaxJobs: 32})
	const n = 8
	ids := make([]int, 0, n)
	for i := 0; i < n; i++ {
		req := smallJob()
		req.Seed = int64(i)
		ids = append(ids, submitAsync(t, ts.URL, req))
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("graceful shutdown errored: %v", err)
	}

	// Every submission must have its full lifecycle in the trace:
	// submitted → running → done, with nothing dropped by the collector.
	if d := s.evTrace.Dropped(); d != 0 {
		t.Fatalf("collector dropped %d events", d)
	}
	byJob := map[int][]string{}
	for _, ev := range s.evTrace.Events() {
		if ev.Kind != "job" {
			t.Fatalf("unexpected event kind %q", ev.Kind)
		}
		byJob[ev.Trial] = append(byJob[ev.Trial], ev.Detail)
	}
	for _, id := range ids {
		states := byJob[id]
		if len(states) != 3 || states[0] != "submitted" || states[1] != "running" || states[2] != "done" {
			t.Errorf("job %d lifecycle = %v, want [submitted running done]", id, states)
		}
	}

	// The lifecycle trace is also served over HTTP until the listener goes.
	code, body := getBody(t, ts.URL+"/v1/trace")
	if code != 200 || !strings.Contains(body, `"kind":"job"`) {
		t.Errorf("/v1/trace status %d", code)
	}
}
