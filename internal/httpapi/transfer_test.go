package httpapi

import (
	"net/http/httptest"
	"testing"
)

// TestTuneTransferJob drives the farm's knowledge base through the HTTP
// surface: a first transfer job trains the store cold, a second warm-starts
// from it, and the poll response carries the warm-start provenance under
// result.transfer.
func TestTuneTransferJob(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TransferDir = t.TempDir()
	s := NewServerWith(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	var cold Job
	code := postJSON(t, ts.URL+"/v1/tune?sync=1",
		TuneRequest{Benchmark: "h2", BudgetMinutes: 30, Seed: 3, Transfer: true}, &cold)
	if code != 200 {
		t.Fatalf("cold transfer tune status %d", code)
	}
	if cold.State != "done" || cold.Result == nil {
		t.Fatalf("cold job not done: %+v", cold)
	}
	x := cold.Result.Transfer
	if x == nil || x.Priors != 0 || !x.Recorded {
		t.Fatalf("cold transfer provenance wrong: %+v", x)
	}

	var warm Job
	if code := postJSON(t, ts.URL+"/v1/tune?sync=1",
		TuneRequest{Benchmark: "avrora", BudgetMinutes: 30, Seed: 4, Transfer: true}, &warm); code != 200 {
		t.Fatalf("warm transfer tune status %d", code)
	}
	x = warm.Result.Transfer
	if x == nil || x.Priors < 1 || x.StoreEntries != 1 {
		t.Fatalf("warm transfer provenance wrong: %+v", x)
	}
	if x.NearestWorkload != "h2" {
		t.Errorf("nearest workload %q, want h2", x.NearestWorkload)
	}

	// A job that does not opt in stays cold even though the farm has a
	// store — transfer is strictly per-request.
	var optOut Job
	if code := postJSON(t, ts.URL+"/v1/tune?sync=1",
		TuneRequest{Benchmark: "fop", BudgetMinutes: 15, Seed: 5}, &optOut); code != 200 {
		t.Fatalf("opt-out tune status %d", code)
	}
	if optOut.Result.Transfer != nil {
		t.Errorf("non-transfer job reports transfer provenance: %+v", optOut.Result.Transfer)
	}
}
