package jvmsim

import (
	"testing"

	"repro/internal/flags"
	"repro/internal/workload"
)

// Simulator evaluation is the unit of work the tuner's budget buys; these
// benchmarks price a single run, a repetition batch, and a population batch
// so the BENCH_*.json trajectory catches regressions in the per-trial cost.

func benchSimConfig(b *testing.B) (*Simulator, *flags.Config, *workload.Profile) {
	b.Helper()
	p, ok := workload.ByName("xalan")
	if !ok {
		b.Fatal("no workload")
	}
	c := flags.NewConfig(flags.NewRegistry())
	c.SetBool("UseG1GC", true)
	c.SetInt("MaxHeapSize", 2<<30)
	c.SetInt("MaxGCPauseMillis", 50)
	c.SetInt("CompileThreshold", 2500)
	return New(), c, p
}

func BenchmarkSimulatorRun(b *testing.B) {
	s, c, p := benchSimConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := s.Run(c, p, i); r.Failed {
			b.Fatal(r.FailureMessage)
		}
	}
}

func BenchmarkSimulatorRunReps(b *testing.B) {
	s, c, p := benchSimConfig(b)
	const reps = 5
	var buf [reps]Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := s.RunReps(c, p, i*reps, reps, buf[:0])
		if rs[0].Failed {
			b.Fatal(rs[0].FailureMessage)
		}
	}
}

func BenchmarkSimulatorRunBatch(b *testing.B) {
	s, c, p := benchSimConfig(b)
	cfgs := make([]*flags.Config, 8)
	for i := range cfgs {
		cfgs[i] = c.Clone()
		cfgs[i].SetInt("SurvivorRatio", int64(2+i))
		cfgs[i].Key() // pre-key, as the executor does before sharing
	}
	out := make([]Result, 0, len(cfgs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = s.RunBatch(cfgs, p, i, out[:0])
		if out[0].Failed {
			b.Fatal(out[0].FailureMessage)
		}
	}
}
