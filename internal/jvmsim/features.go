package jvmsim

import (
	"repro/internal/flags"
	"repro/internal/workload"
)

// featureEffects aggregates the flag effects that act multiplicatively on
// application speed, allocation rate, and code size, independent of the GC
// and JIT phase models.
type featureEffects struct {
	// compiledSpeed scales C2-compiled execution speed; 1.0 is the
	// reference (default flags).
	compiledSpeed float64
	// interpSpeed scales interpreter speed.
	interpSpeed float64
	// allocScale scales the workload's allocation rate.
	allocScale float64
	// codeExpansion scales emitted code size (inlining and unrolling bloat).
	codeExpansion float64
	// overhead multiplies total wall time for engaged observability flags.
	overhead float64
	// startupExtra is added to startup cost (pre-touch, tiny code cache).
	startupExtra float64
	// appPenalty multiplies app compute time (slow allocation paths, etc.).
	appPenalty float64
}

// computeFeatures evaluates all non-GC, non-phase flag effects.
func computeFeatures(c *flags.Config, p *workload.Profile, m Machine) featureEffects {
	fx := featureEffects{
		compiledSpeed: 1, interpSpeed: 1, allocScale: 1,
		codeExpansion: 1, overhead: 1, appPenalty: 1,
	}

	// --- Inlining budgets -------------------------------------------------
	call := p.CallIntensity
	szScore := 0.5*clamp(float64(c.Int("MaxInlineSize"))/35, 0, 3) +
		0.5*clamp(float64(c.Int("FreqInlineSize"))/325, 0, 3)
	if szScore < 1 {
		// Starving the inliner hurts call-bound code badly.
		fx.compiledSpeed *= 1 - call*0.35*(1-szScore)
	} else {
		// More generous budgets help, with fast diminishing returns.
		fx.compiledSpeed *= 1 + call*0.05*clamp(szScore-1, 0, 0.8)
		fx.codeExpansion *= 1 + 0.30*clamp(szScore-1, 0, 2)
	}
	if lvl := c.Int("MaxInlineLevel"); lvl < 6 {
		fx.compiledSpeed *= 1 - call*0.06*float64(6-lvl)/5
	}
	if c.Int("MaxRecursiveInlineLevel") == 0 {
		fx.compiledSpeed *= 1 - call*0.01
	}
	if isc := float64(c.Int("InlineSmallCode")); isc < 1000 {
		fx.compiledSpeed *= 1 - call*0.04*(1000-isc)/1000
	}
	if !c.Bool("ClipInlining") {
		fx.compiledSpeed *= 1 + call*0.005
		fx.codeExpansion *= 1.15
	}
	if !c.Bool("InlineSynchronizedMethods") {
		fx.compiledSpeed *= 1 - call*p.SyncIntensity*0.02
	}
	if c.Bool("UseFastAccessorMethods") {
		fx.interpSpeed *= 1 + call*0.06
	}

	// --- Loop optimizations ----------------------------------------------
	loop := p.LoopIntensity
	if !c.Bool("UseSuperWord") {
		fx.compiledSpeed *= 1 - loop*0.07
	}
	if !c.Bool("UseLoopPredicate") {
		fx.compiledSpeed *= 1 - loop*0.02
	}
	if !c.Bool("RangeCheckElimination") {
		fx.compiledSpeed *= 1 - loop*0.04
	}
	if u := float64(c.Int("LoopUnrollLimit")); u < 50 {
		fx.compiledSpeed *= 1 - loop*0.025*(50-u)/50
	} else if u > 120 {
		fx.compiledSpeed *= 1 - loop*0.012*(u-120)/80
		fx.codeExpansion *= 1 + (u-120)/800
	}

	// --- Allocation optimizations ------------------------------------------
	if c.Bool("DoEscapeAnalysis") {
		if !c.Bool("EliminateAllocations") {
			fx.allocScale *= 1 + p.EscapeFrac*0.25
			fx.compiledSpeed *= 1 - p.EscapeFrac*0.02
		}
	} else {
		fx.allocScale *= 1 + p.EscapeFrac*0.5
		fx.compiledSpeed *= 1 - p.EscapeFrac*0.06
	}
	if !c.Bool("EliminateLocks") {
		fx.compiledSpeed *= 1 - p.SyncIntensity*(1-p.LockContention)*0.02
	}
	if !c.Bool("OptimizeStringConcat") {
		fx.compiledSpeed *= 1 - p.StringIntensity*0.03
	}
	if c.Bool("UseStringCache") {
		fx.compiledSpeed *= 1 + p.StringIntensity*0.01
	}
	if c.Bool("CompactStrings") {
		fx.compiledSpeed *= 1 + p.StringIntensity*0.015
		fx.allocScale *= 1 - p.StringIntensity*0.08
	}
	if c.Bool("AggressiveOpts") {
		fx.compiledSpeed *= 1.012
	}

	// --- Memory system ------------------------------------------------------
	if !c.Bool("UseCompressedOops") {
		fx.compiledSpeed *= 1 - p.PointerIntensity*0.05
		fx.allocScale *= 1.12
	}
	if c.Bool("UseLargePages") {
		fx.compiledSpeed *= 1 + 0.015*clamp(p.LiveSetMB/512, 0, 1)
	}
	if c.Bool("UseNUMA") && p.AppThreads >= 4 {
		fx.compiledSpeed *= 1.01
	}
	if c.Bool("AlwaysPreTouch") {
		fx.startupExtra += float64(c.Int("MaxHeapSize")>>20) / 8000
		fx.compiledSpeed *= 1.003
	}
	if !c.Bool("UseTLAB") {
		fx.appPenalty *= 1 + 0.05*clamp(p.AllocRateMBps/100, 0.2, 2)
	} else if sz := c.Int("TLABSize"); sz > 0 && sz < 64<<10 && p.AppThreads > 2 {
		fx.appPenalty *= 1.012
	}

	// --- Synchronization ------------------------------------------------------
	sync, cont := p.SyncIntensity, p.LockContention
	if c.Bool("UseBiasedLocking") {
		benefit := sync * (1 - cont) * 0.04
		cost := sync * cont * 0.035
		delaySec := float64(c.Int("BiasedLockingStartupDelay")) / 1000
		coverage := clamp(1-delaySec/p.BaseSeconds, 0, 1)
		fx.compiledSpeed *= 1 + coverage*(benefit-cost)
	}
	if c.Bool("UseSpinLocks") {
		fx.compiledSpeed *= 1 + sync*cont*0.02 - sync*(1-cont)*0.005
	}
	if c.Bool("UseCondCardMark") && p.AppThreads > 1 {
		fx.compiledSpeed *= 1 + sync*0.01*clamp(float64(p.AppThreads)/float64(m.Cores), 0, 1)
	}

	// --- Runtime services ------------------------------------------------------
	if !c.Bool("UsePerfData") {
		fx.compiledSpeed *= 1.005
	}
	if c.Bool("ReduceSignalUsage") {
		fx.compiledSpeed *= 1.002
	}
	if !c.Bool("ClassUnloading") {
		fx.compiledSpeed *= 1.002
	}

	// --- Engaged observability flags ---------------------------------------
	// Every inert boolean switched on charges its overhead.
	c.EachExplicit(func(f *flags.Flag, v flags.Value) {
		if f.Inert && f.OverheadPct > 0 && f.Type == flags.Bool && v.B {
			fx.overhead *= 1 + f.OverheadPct
		}
	})
	return fx
}
