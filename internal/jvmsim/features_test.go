package jvmsim

import (
	"testing"

	"repro/internal/flags"
	"repro/internal/workload"
)

// speedOf computes compiledSpeed for a config against a profile.
func speedOf(t *testing.T, p *workload.Profile, mod func(c *flags.Config)) float64 {
	t.Helper()
	return computeFeatures(cfgWith(t, mod), p, DefaultMachine()).compiledSpeed
}

func callBound(t *testing.T) *workload.Profile {
	t.Helper()
	p, _ := workload.ByName("jython") // call intensity 0.85
	return p
}

func loopBound(t *testing.T) *workload.Profile {
	t.Helper()
	p, _ := workload.ByName("startup.scimark.sor") // loop intensity 0.95
	return p
}

func TestInlineBudgetEffects(t *testing.T) {
	p := callBound(t)
	def := speedOf(t, p, nil)
	starved := speedOf(t, p, func(c *flags.Config) {
		c.SetInt("MaxInlineSize", 1)
		c.SetInt("FreqInlineSize", 50)
	})
	generous := speedOf(t, p, func(c *flags.Config) {
		c.SetInt("MaxInlineSize", 70)
		c.SetInt("FreqInlineSize", 650)
	})
	if starved >= def {
		t.Error("starving the inliner should slow call-bound code")
	}
	if generous <= def {
		t.Error("doubling the budgets should help call-bound code")
	}
	// Diminishing returns: quadrupling adds little over doubling.
	huge := speedOf(t, p, func(c *flags.Config) {
		c.SetInt("MaxInlineSize", 140)
		c.SetInt("FreqInlineSize", 1300)
	})
	if huge-generous > generous-def {
		t.Error("inlining gains should saturate")
	}
	// But code expansion keeps growing.
	fxG := computeFeatures(cfgWith(t, func(c *flags.Config) {
		c.SetInt("MaxInlineSize", 70)
		c.SetInt("FreqInlineSize", 650)
	}), p, DefaultMachine())
	fxH := computeFeatures(cfgWith(t, func(c *flags.Config) {
		c.SetInt("MaxInlineSize", 140)
		c.SetInt("FreqInlineSize", 1300)
	}), p, DefaultMachine())
	if fxH.codeExpansion <= fxG.codeExpansion {
		t.Error("bigger budgets should keep expanding code")
	}
}

func TestInlineDepthEffects(t *testing.T) {
	p := callBound(t)
	def := speedOf(t, p, nil)
	shallow := speedOf(t, p, func(c *flags.Config) { c.SetInt("MaxInlineLevel", 2) })
	if shallow >= def {
		t.Error("shallow inlining should slow call-bound code")
	}
	noRec := speedOf(t, p, func(c *flags.Config) { c.SetInt("MaxRecursiveInlineLevel", 0) })
	if noRec >= def {
		t.Error("disabling recursive inlining should cost a little")
	}
}

func TestLoopOptEffects(t *testing.T) {
	p := loopBound(t)
	def := speedOf(t, p, nil)
	for _, f := range []string{"UseSuperWord", "UseLoopPredicate", "RangeCheckElimination"} {
		off := speedOf(t, p, func(c *flags.Config) { c.SetBool(f, false) })
		if off >= def {
			t.Errorf("disabling %s should slow loop code", f)
		}
	}
	lowUnroll := speedOf(t, p, func(c *flags.Config) { c.SetInt("LoopUnrollLimit", 5) })
	highUnroll := speedOf(t, p, func(c *flags.Config) { c.SetInt("LoopUnrollLimit", 200) })
	if lowUnroll >= def || highUnroll >= def {
		t.Error("the unroll limit should have an interior optimum")
	}
}

func TestEscapeAnalysisEffects(t *testing.T) {
	p, _ := workload.ByName("sunflow") // escape fraction 0.45
	m := DefaultMachine()
	def := computeFeatures(cfgWith(t, nil), p, m)
	off := computeFeatures(cfgWith(t, func(c *flags.Config) {
		c.SetBool("DoEscapeAnalysis", false)
	}), p, m)
	if off.allocScale <= def.allocScale {
		t.Error("disabling escape analysis should allocate more")
	}
	if off.compiledSpeed >= def.compiledSpeed {
		t.Error("disabling escape analysis should run slower")
	}
	half := computeFeatures(cfgWith(t, func(c *flags.Config) {
		c.SetBool("EliminateAllocations", false)
	}), p, m)
	if !(def.allocScale < half.allocScale && half.allocScale < off.allocScale) {
		t.Errorf("EliminateAllocations=false should sit between: %v %v %v",
			def.allocScale, half.allocScale, off.allocScale)
	}
}

func TestCompressedOopsEffects(t *testing.T) {
	p, _ := workload.ByName("h2") // pointer intensity 0.7
	m := DefaultMachine()
	def := computeFeatures(cfgWith(t, nil), p, m)
	off := computeFeatures(cfgWith(t, func(c *flags.Config) {
		c.SetBool("UseCompressedOops", false)
	}), p, m)
	if off.compiledSpeed >= def.compiledSpeed {
		t.Error("fat oops should be slower on pointer-chasing code")
	}
	if off.allocScale <= def.allocScale {
		t.Error("fat oops should allocate more bytes")
	}
}

func TestBiasedLockingCoverage(t *testing.T) {
	// Low contention: biasing helps; a long startup delay wastes it on a
	// short run.
	p, _ := workload.ByName("startup.serial") // sync 0.15, contention 0.03, 14 s run
	withBias := speedOf(t, p, nil)            // default: on, 4 s delay
	noDelay := speedOf(t, p, func(c *flags.Config) { c.SetInt("BiasedLockingStartupDelay", 0) })
	off := speedOf(t, p, func(c *flags.Config) { c.SetBool("UseBiasedLocking", false) })
	if noDelay <= withBias {
		t.Error("removing the startup delay should increase the biasing benefit")
	}
	if off >= withBias {
		t.Error("biasing should help low-contention code")
	}

	// High contention: revocations can make biasing a net loss.
	contended := *p
	contended.SyncIntensity = 0.8
	contended.LockContention = 0.9
	on := computeFeatures(cfgWith(t, func(c *flags.Config) {
		c.SetInt("BiasedLockingStartupDelay", 0)
	}), &contended, DefaultMachine()).compiledSpeed
	offC := computeFeatures(cfgWith(t, func(c *flags.Config) {
		c.SetBool("UseBiasedLocking", false)
	}), &contended, DefaultMachine()).compiledSpeed
	if on >= offC {
		t.Error("heavy contention should make biased locking a net loss")
	}
}

func TestTLABEffects(t *testing.T) {
	p, _ := workload.ByName("lusearch") // 190 MB/s allocation, 8 threads
	m := DefaultMachine()
	def := computeFeatures(cfgWith(t, nil), p, m)
	noTLAB := computeFeatures(cfgWith(t, func(c *flags.Config) {
		c.SetBool("UseTLAB", false)
	}), p, m)
	if noTLAB.appPenalty <= def.appPenalty {
		t.Error("disabling TLABs should slow allocation-heavy code")
	}
	tiny := computeFeatures(cfgWith(t, func(c *flags.Config) {
		c.SetInt("TLABSize", 16<<10)
	}), p, m)
	if tiny.appPenalty <= def.appPenalty {
		t.Error("undersized fixed TLABs should cost refill overhead")
	}
}

func TestPreTouchTradesStartupForThroughput(t *testing.T) {
	p, _ := workload.ByName("h2")
	m := DefaultMachine()
	fx := computeFeatures(cfgWith(t, func(c *flags.Config) {
		c.SetBool("AlwaysPreTouch", true)
		c.SetInt("MaxHeapSize", 4<<30)
	}), p, m)
	if fx.startupExtra <= 0 {
		t.Error("pre-touching 4 GB should cost startup time")
	}
	if fx.compiledSpeed <= 1 {
		t.Error("pre-touching should buy a little steady-state speed")
	}
}

func TestObservabilityOverheadMultiplies(t *testing.T) {
	p, _ := workload.ByName("fop")
	m := DefaultMachine()
	fx := computeFeatures(cfgWith(t, func(c *flags.Config) {
		c.SetBool("PrintGCDetails", true) // 0.4%
		c.SetBool("TraceClassLoadingPreorder", true)
	}), p, m)
	if fx.overhead <= 1.0 {
		t.Error("engaged observability flags should cost time")
	}
	clean := computeFeatures(cfgWith(t, nil), p, m)
	if clean.overhead != 1.0 {
		t.Error("default config should have no observability overhead")
	}
}

func TestStringOptEffects(t *testing.T) {
	p, _ := workload.ByName("xalan") // string intensity 0.7
	def := speedOf(t, p, nil)
	noConcat := speedOf(t, p, func(c *flags.Config) { c.SetBool("OptimizeStringConcat", false) })
	if noConcat >= def {
		t.Error("disabling concat fusion should slow string code")
	}
	compact := computeFeatures(cfgWith(t, func(c *flags.Config) {
		c.SetBool("CompactStrings", true)
	}), p, DefaultMachine())
	if compact.allocScale >= 1 {
		t.Error("compact strings should shrink allocation")
	}
}

func TestFastAccessorsHelpInterpreter(t *testing.T) {
	p := callBound(t)
	fx := computeFeatures(cfgWith(t, func(c *flags.Config) {
		c.SetBool("UseFastAccessorMethods", true)
	}), p, DefaultMachine())
	if fx.interpSpeed <= 1 {
		t.Error("fast accessors should speed the interpreted phase")
	}
}
