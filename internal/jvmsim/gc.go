package jvmsim

import (
	"repro/internal/flags"
	"repro/internal/hierarchy"
	"repro/internal/workload"
)

// gcOutcome is the GC phase model's contribution to a run.
type gcOutcome struct {
	stopSeconds float64 // sum of stop-the-world pauses
	appSlowdown float64 // fractional compute slowdown (concurrent GC, barriers)
	startup     float64 // heap growth and sizing work at startup
	minorGCs    float64
	fullGCs     float64
	maxPause    float64
	youngMB     float64
	oldMB       float64
	oom         bool
	oomMessage  string
}

// heapGeometry resolves the flag-driven generation sizes.
type heapGeometry struct {
	heapMB float64
	young  float64
	eden   float64
	surv   float64 // one survivor space
	old    float64
}

func resolveGeometry(c *flags.Config, p *workload.Profile, col hierarchy.Collector, m Machine) heapGeometry {
	g := heapGeometry{heapMB: float64(c.Int("MaxHeapSize") >> 20)}
	if col == hierarchy.G1 {
		// G1 sizes its young set of regions against the pause goal.
		pauseMs := float64(c.Int("MaxGCPauseMillis"))
		g.young = clamp(g.heapMB*(0.05+pauseMs/200*0.15), g.heapMB*0.05, g.heapMB*0.60)
		g.eden = g.young * 0.9
		g.surv = g.young * 0.05
		g.old = g.heapMB - g.young
		return g
	}
	if ms := c.Int("MaxNewSize"); ms > 0 {
		g.young = clamp(float64(ms>>20), 1, g.heapMB*0.8)
	} else {
		g.young = g.heapMB / float64(c.Int("NewRatio")+1)
	}
	sr := float64(c.Int("SurvivorRatio"))
	g.eden = g.young * sr / (sr + 2)
	g.surv = g.young / (sr + 2)
	g.old = g.heapMB - g.young

	// The parallel collector's ergonomics resize the young generation
	// online unless explicit sizes pin it. Model as a half-way pull toward
	// a sensible size, damping (not erasing) manual young-gen tuning.
	if col == hierarchy.Parallel && c.Bool("UseAdaptiveSizePolicy") &&
		c.Int("NewSize") == 0 && c.Int("MaxNewSize") == 0 {
		allocRate := p.AllocRateMBps
		goodEden := clamp(2.0*allocRate, 32, g.heapMB*0.5)
		g.eden = 0.5*g.eden + 0.5*goodEden
		g.young = g.eden * (sr + 2) / sr
		g.old = g.heapMB - g.young
	}
	return g
}

// computeGC models collection cost for the configured collector.
// appSeconds is the compute time during which allocation happens.
func computeGC(c *flags.Config, p *workload.Profile, col hierarchy.Collector,
	m Machine, appSeconds, allocScale float64) gcOutcome {

	g := resolveGeometry(c, p, col, m)
	out := gcOutcome{youngMB: g.young, oldMB: g.old}

	// Old generation capacity after collector-specific deductions.
	oldCap := g.old
	switch col {
	case hierarchy.CMS:
		// CMS never compacts during concurrent cycles; fragmentation taxes
		// the free lists.
		frag := 0.88
		if n := c.Int("CMSFullGCsBeforeCompaction"); n > 0 {
			frag *= pow(0.985, float64(n))
		}
		oldCap *= frag
	case hierarchy.G1:
		oldCap *= 1 - float64(c.Int("G1ReservePercent"))/100
		oldCap *= 1 - float64(c.Int("G1HeapWastePercent"))/200
		// Humongous objects fragment small-region heaps.
		region := g1RegionMB(c, g.heapMB)
		if p.LargeObjectFrac > 0 && region < 4 {
			oldCap *= 1 - p.LargeObjectFrac*0.5*(4-region)/4
		}
	}
	if oldCap < p.LiveSetMB*1.05 {
		out.oom = true
		out.oomMessage = "java.lang.OutOfMemoryError: Java heap space"
		return out
	}

	// Permanent generation (JDK-7 era): class metadata must fit, and
	// crowding it triggers class-unloading full collections.
	maxPermMB := float64(c.Int("MaxPermSize") >> 20)
	if p.ClassMetaMB > maxPermMB*0.98 {
		out.oom = true
		out.oomMessage = "java.lang.OutOfMemoryError: PermGen space"
		return out
	}
	permFulls := 0.0
	if occ := p.ClassMetaMB / maxPermMB; occ > 0.8 {
		permFulls = (occ - 0.8) * 60
		if !c.Bool("ClassUnloading") {
			// Without unloading the only relief is a full GC that frees
			// nothing; the VM keeps retrying.
			permFulls *= 2.5
		}
	}
	if permMB := float64(c.Int("PermSize") >> 20); permMB < p.ClassMetaMB {
		out.startup += 0.02 * log2(p.ClassMetaMB/permMB)
	}

	// Allocation stream.
	alloc := p.AllocRateMBps * allocScale * appSeconds
	if alloc <= 0 {
		return out
	}

	// Pretenuring diverts large objects straight to the old generation.
	largeDiverted := 0.0
	if ptt := c.Int("PretenureSizeThreshold"); ptt > 0 && col != hierarchy.G1 {
		largeDiverted = p.LargeObjectFrac * 0.8
	}
	youngAlloc := alloc * (1 - largeDiverted)

	// Scavenge accounting.
	effShort := p.ShortLivedFrac * (1 - expDecay(g.eden/p.EdenHalfLifeMB))
	survivalFrac := clamp(1-effShort, 0.01, 1)
	minorCount := youngAlloc / g.eden
	survivedPerMinor := g.eden * survivalFrac

	mtt := float64(c.Int("MaxTenuringThreshold"))
	tau := p.MidLifeRounds

	// Survivor space as an aging buffer. Mid-lived objects need to sit in a
	// survivor space for ~tau scavenges to die there; the steady-state
	// stock that requires is edenInflow × residency. If the survivor space
	// cannot hold the stock, the excess inflow promotes prematurely — the
	// classic undersized-survivor failure mode that SurvivorRatio,
	// TargetSurvivorRatio and MaxTenuringThreshold exist to fix.
	survCap := g.surv * float64(c.Int("TargetSurvivorRatio")) / 100
	if col == hierarchy.G1 {
		// G1 takes survivor regions from the free set as needed.
		survCap = g.young * 0.3
	}
	undeadShort := p.ShortLivedFrac - effShort
	residency := clamp(mtt, 0, 1.5*tau)
	stock := g.eden*p.MidLivedFrac*residency*0.5 + g.eden*undeadShort*0.5
	fitFrac := 1.0
	if stock > 0 {
		fitFrac = clamp(survCap/stock, 0, 1)
	}
	// Who gets promoted per scavenge: long-lived always (eventually);
	// mid-lived if tenuring is too shallow or the survivor space spills;
	// not-yet-dead short-lived likewise (they only need one round).
	promotedFrac := p.LongLivedFrac() +
		p.MidLivedFrac*(fitFrac*expDecay(mtt/tau)+(1-fitFrac)) +
		undeadShort*(fitFrac*expDecay(mtt/0.8)+(1-fitFrac))
	promotedPerMinor := g.eden * clamp(promotedFrac, 0, 1)

	// Each scavenge copies the fresh survivors plus the retained stock.
	copyPerMinor := survivedPerMinor + minf(stock, survCap)

	// Young-collection worker pool.
	gcThreads := int(c.Int("ParallelGCThreads"))
	switch col {
	case hierarchy.Serial:
		gcThreads = 1
	case hierarchy.CMS:
		if !c.Bool("UseParNewGC") {
			gcThreads = 1 // classic serial young collector under CMS
		}
	}
	eff := parallelEfficiency(gcThreads, m.Cores)
	if c.Bool("UseGCTaskAffinity") && gcThreads >= 4 {
		eff *= 1.01
	}
	if c.Bool("BindGCTaskThreadsToCPUs") && gcThreads >= 4 {
		eff *= 1.01
	}

	minorPause := copyPerMinor/(copyRateMBps*eff) + minorFixedPause + 0.0004*float64(gcThreads)
	if col == hierarchy.G1 {
		// Remembered-set scanning adds to every evacuation pause.
		minorPause += g.eden * p.PointerIntensity * 0.0004 / eff
		region := g1RegionMB(c, g.heapMB)
		if regions := g.heapMB / region; regions > 2048 {
			minorPause += (regions - 2048) * 3e-6
		}
	}
	if c.Bool("ParallelRefProcEnabled") && gcThreads > 1 {
		minorPause *= 1 - p.RefIntensity*0.25
	}

	out.minorGCs = minorCount
	out.stopSeconds += minorCount * minorPause
	out.maxPause = minorPause

	// Old generation reclamation.
	promotedTotal := promotedPerMinor*minorCount + alloc*largeDiverted
	freeOld := oldCap - p.LiveSetMB
	fullPauseSerial := (p.LiveSetMB + g.young*0.3) / fullRateMBps
	if permFulls > 0 {
		out.fullGCs += permFulls
		out.stopSeconds += permFulls * fullPauseSerial
	}

	switch col {
	case hierarchy.Serial, hierarchy.Parallel:
		fullEff := 1.0
		if col == hierarchy.Parallel && c.Bool("UseParallelOldGC") {
			fullEff = parallelEfficiency(gcThreads, m.Cores)
		}
		fullPause := fullPauseSerial / fullEff
		if c.Bool("ScavengeBeforeFullGC") {
			fullPause *= 0.95
		}
		fulls := promotedTotal / freeOld
		out.fullGCs += fulls
		out.stopSeconds += fulls * fullPause
		if fullPause > out.maxPause {
			out.maxPause = fullPause
		}
		out.stopSeconds += explicitGCCost(c, p, fullPause, false)

	case hierarchy.CMS:
		iof := float64(c.Int("CMSInitiatingOccupancyFraction"))
		if !c.Bool("UseCMSInitiatingOccupancyOnly") {
			// Adaptive triggering blends the hint with its own estimate.
			iof = 0.5*iof + 0.5*80
		}
		headroomAtTrigger := g.old * (1 - iof/100)
		concThreads := int(c.Int("ConcGCThreads"))
		if concThreads <= 0 {
			concThreads = (gcThreads + 3) / 4
		}
		cycles := promotedTotal / freeOld
		cycleDur := p.LiveSetMB / (concRateMBps * float64(concThreads))
		// Concurrent work steals cores from the application.
		fracInCycles := clamp(cycles*cycleDur/appSeconds, 0, 1)
		out.appSlowdown += fracInCycles * clamp(float64(concThreads)/float64(m.Cores), 0, 1) * 0.9

		remarkEff := 1.0
		if c.Bool("CMSParallelRemarkEnabled") {
			remarkEff = parallelEfficiency(gcThreads, m.Cores)
		}
		remark := p.LiveSetMB / (remarkRateMBps * remarkEff)
		if c.Bool("CMSScavengeBeforeRemark") {
			remark *= 0.75
			out.stopSeconds += cycles * minorPause * 0.5
		}
		if c.Bool("CMSClassUnloadingEnabled") {
			remark *= 1.12
		}
		initialMark := 0.01 + p.LiveSetMB/(remarkRateMBps*4)
		out.stopSeconds += cycles * (initialMark + remark)
		if remark > out.maxPause {
			out.maxPause = remark
		}

		// Concurrent mode failure: promotion outruns the cycle.
		promoRate := promotedTotal / appSeconds
		if headroomAtTrigger > 0 {
			risk := clamp(promoRate*cycleDur/headroomAtTrigger-0.8, 0, 1)
			cmfs := cycles * risk
			out.fullGCs += cmfs
			out.stopSeconds += cmfs * fullPauseSerial // CMF falls back to serial full GC
			if cmfs > 0.5 && fullPauseSerial > out.maxPause {
				out.maxPause = fullPauseSerial
			}
		} else {
			// Triggering beyond the live set: every cycle starts too late.
			out.fullGCs += cycles
			out.stopSeconds += cycles * fullPauseSerial
		}
		out.stopSeconds += explicitGCCost(c, p, fullPauseSerial, true)

	case hierarchy.G1:
		concThreads := int(c.Int("ConcGCThreads"))
		if concThreads <= 0 {
			concThreads = (gcThreads + 3) / 4
		}
		ihop := float64(c.Int("InitiatingHeapOccupancyPercent"))
		headroom := g.old*(1-ihop/100) + 1
		cycles := promotedTotal / clamp(freeOld, 1, g.old)
		cycleDur := p.LiveSetMB / (concRateMBps * float64(concThreads))
		fracInCycles := clamp(cycles*cycleDur/appSeconds, 0, 1)
		out.appSlowdown += fracInCycles * clamp(float64(concThreads)/float64(m.Cores), 0, 1) * 0.7

		// Mixed collections evacuate the promoted bytes.
		mixedWork := promotedTotal / (copyRateMBps * eff) * 1.3
		out.stopSeconds += mixedWork
		mixedPer := mixedWork / clamp(cycles*float64(c.Int("G1MixedGCCountTarget")), 1, 1e9)
		if mixedPer > out.maxPause {
			out.maxPause = mixedPer
		}
		// Triggering too late risks evacuation failure.
		lateness := clamp(promotedTotal/appSeconds*cycleDur/headroom-0.8, 0, 1)
		evacFails := cycles * lateness * 0.5
		out.fullGCs += evacFails
		out.stopSeconds += evacFails * fullPauseSerial

		// Write barriers and remembered-set maintenance tax the mutator.
		out.appSlowdown += 0.01 + p.PointerIntensity*0.02
		out.stopSeconds += explicitGCCost(c, p, fullPauseSerial, true)
	}

	// Heap growth from InitialHeapSize to the working size.
	initMB := float64(c.Int("InitialHeapSize") >> 20)
	if initMB < g.heapMB {
		steps := log2(g.heapMB / initMB)
		growCost := 0.04 * steps
		if c.Int("MinHeapFreeRatio") >= 60 {
			growCost *= 0.6 // eager expansion
		}
		out.startup += growCost
	}
	return out
}

// explicitGCCost charges for System.gc() calls.
func explicitGCCost(c *flags.Config, p *workload.Profile, fullPause float64, concurrentCapable bool) float64 {
	if p.ExplicitGCCalls == 0 || c.Bool("DisableExplicitGC") {
		return 0
	}
	per := fullPause
	if concurrentCapable && c.Bool("ExplicitGCInvokesConcurrent") {
		per = fullPause * 0.1
	}
	return float64(p.ExplicitGCCalls) * per
}

// g1RegionMB resolves the G1 region size: explicit power-of-two or
// ergonomic (heap/2048 clamped to [1, 32] MB).
func g1RegionMB(c *flags.Config, heapMB float64) float64 {
	if v := c.Int("G1HeapRegionSize"); v > 0 {
		mb := float64(v >> 20)
		// Round down to a power of two, as the VM does.
		r := 1.0
		for r*2 <= mb && r < 32 {
			r *= 2
		}
		return r
	}
	r := 1.0
	for r*2 <= heapMB/2048 && r < 32 {
		r *= 2
	}
	return r
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func log2(x float64) float64 {
	if x <= 1 {
		return 0
	}
	n := 0.0
	for x > 1 {
		x /= 2
		n++
	}
	return n
}
