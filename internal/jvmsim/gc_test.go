package jvmsim

import (
	"testing"

	"repro/internal/flags"
	"repro/internal/hierarchy"
	"repro/internal/workload"
)

func gcProfile(t *testing.T) *workload.Profile {
	t.Helper()
	p, ok := workload.ByName("h2")
	if !ok {
		t.Fatal("no h2 profile")
	}
	return p
}

func cfgWith(t *testing.T, set func(c *flags.Config)) *flags.Config {
	t.Helper()
	c := flags.NewConfig(flags.NewRegistry())
	if set != nil {
		set(c)
	}
	return c
}

func TestResolveGeometryNewRatio(t *testing.T) {
	p := gcProfile(t)
	m := DefaultMachine()
	c := cfgWith(t, func(c *flags.Config) {
		c.SetBool("UseAdaptiveSizePolicy", false) // pin the geometry
		c.SetInt("MaxHeapSize", 900<<20)
		c.SetInt("NewRatio", 2)
	})
	g := resolveGeometry(c, p, hierarchy.Parallel, m)
	if g.young < 290 || g.young > 310 {
		t.Errorf("NewRatio=2 on 900 MB should give ~300 MB young, got %.0f", g.young)
	}
	if g.old != g.heapMB-g.young {
		t.Error("old + young must cover the heap")
	}
	// Eden/survivor split follows SurvivorRatio (default 8): eden = 8/10.
	if ratio := g.eden / g.young; ratio < 0.79 || ratio > 0.81 {
		t.Errorf("eden fraction %.3f, want 0.8", ratio)
	}
}

func TestResolveGeometryMaxNewSizeWins(t *testing.T) {
	p := gcProfile(t)
	c := cfgWith(t, func(c *flags.Config) {
		c.SetInt("MaxHeapSize", 1024<<20)
		c.SetInt("MaxNewSize", 128<<20)
		c.SetInt("NewRatio", 1) // would give 512 MB; MaxNewSize must win
	})
	g := resolveGeometry(c, p, hierarchy.Parallel, DefaultMachine())
	if g.young != 128 {
		t.Errorf("explicit MaxNewSize ignored: young = %.0f", g.young)
	}
}

func TestResolveGeometryAdaptivePullsEden(t *testing.T) {
	p := gcProfile(t) // alloc 125 MB/s → good eden 250
	on := cfgWith(t, nil)
	off := cfgWith(t, func(c *flags.Config) { c.SetBool("UseAdaptiveSizePolicy", false) })
	gOn := resolveGeometry(on, p, hierarchy.Parallel, DefaultMachine())
	gOff := resolveGeometry(off, p, hierarchy.Parallel, DefaultMachine())
	if gOn.eden <= gOff.eden {
		t.Errorf("adaptive policy should grow eden toward the allocation rate: %.0f vs %.0f",
			gOn.eden, gOff.eden)
	}
	// Explicit sizes disable adaptivity.
	pinned := cfgWith(t, func(c *flags.Config) { c.SetInt("MaxNewSize", 170<<20) })
	gPin := resolveGeometry(pinned, p, hierarchy.Parallel, DefaultMachine())
	if gPin.young != 170 {
		t.Errorf("explicit sizes should pin geometry, young = %.0f", gPin.young)
	}
	// Adaptivity is a parallel-collector feature.
	gSerial := resolveGeometry(on, p, hierarchy.Serial, DefaultMachine())
	if gSerial.eden != gOff.eden {
		t.Error("serial collector should not size adaptively")
	}
}

func TestResolveGeometryG1FollowsPauseGoal(t *testing.T) {
	p := gcProfile(t)
	tight := cfgWith(t, func(c *flags.Config) {
		c.SetInt("MaxGCPauseMillis", 10)
	})
	loose := cfgWith(t, func(c *flags.Config) {
		c.SetInt("MaxGCPauseMillis", 2000)
	})
	gT := resolveGeometry(tight, p, hierarchy.G1, DefaultMachine())
	gL := resolveGeometry(loose, p, hierarchy.G1, DefaultMachine())
	if gT.young >= gL.young {
		t.Errorf("tighter pause goal should shrink the young set: %.0f vs %.0f", gT.young, gL.young)
	}
	// Bounded between 5% and 60% of the heap.
	heap := gT.heapMB
	if gT.young < 0.05*heap-1 || gL.young > 0.60*heap+1 {
		t.Error("G1 young size outside its ergonomic bounds")
	}
}

func TestG1RegionSize(t *testing.T) {
	// Explicit power-of-two rounding.
	c := cfgWith(t, func(c *flags.Config) { c.SetInt("G1HeapRegionSize", 7<<20) })
	if r := g1RegionMB(c, 1024); r != 4 {
		t.Errorf("7 MB request should round down to 4, got %.0f", r)
	}
	// Ergonomic: heap/2048 clamped to [1, 32].
	d := cfgWith(t, nil)
	if r := g1RegionMB(d, 1024); r != 1 {
		t.Errorf("1 GB heap ergonomic region = %.0f, want 1", r)
	}
	if r := g1RegionMB(d, 8192); r != 4 {
		t.Errorf("8 GB heap ergonomic region = %.0f, want 4", r)
	}
	big := cfgWith(t, func(c *flags.Config) { c.SetInt("G1HeapRegionSize", 32<<20) })
	if r := g1RegionMB(big, 8192); r != 32 {
		t.Errorf("explicit 32 MB region = %.0f", r)
	}
}

func TestSurvivorOverflowPromotesPrematurely(t *testing.T) {
	p := gcProfile(t) // mid-lived fraction 0.12: needs survivor room
	m := DefaultMachine()
	// TargetSurvivorRatio changes usable survivor capacity without moving
	// the eden/survivor boundary, isolating the overflow effect.
	small := cfgWith(t, func(c *flags.Config) {
		c.SetInt("TargetSurvivorRatio", 1) // starve the survivor spaces
		c.SetBool("UseAdaptiveSizePolicy", false)
	})
	roomy := cfgWith(t, func(c *flags.Config) {
		c.SetInt("TargetSurvivorRatio", 100)
		c.SetBool("UseAdaptiveSizePolicy", false)
	})
	gcS := computeGC(small, p, hierarchy.Parallel, m, 40, 1)
	gcR := computeGC(roomy, p, hierarchy.Parallel, m, 40, 1)
	if gcS.fullGCs <= gcR.fullGCs {
		t.Errorf("starved survivors should promote more and trigger more full GCs: %.1f vs %.1f",
			gcS.fullGCs, gcR.fullGCs)
	}
}

func TestMaxTenuringThresholdZeroPromotesEverything(t *testing.T) {
	p := gcProfile(t)
	m := DefaultMachine()
	mtt0 := cfgWith(t, func(c *flags.Config) { c.SetInt("MaxTenuringThreshold", 0) })
	mtt15 := cfgWith(t, func(c *flags.Config) { c.SetInt("MaxTenuringThreshold", 15) })
	g0 := computeGC(mtt0, p, hierarchy.Parallel, m, 40, 1)
	g15 := computeGC(mtt15, p, hierarchy.Parallel, m, 40, 1)
	if g0.fullGCs <= g15.fullGCs {
		t.Errorf("MTT=0 should flood the old generation: %.1f vs %.1f full GCs",
			g0.fullGCs, g15.fullGCs)
	}
}

func TestCMSAdaptiveTriggerBlendsIOF(t *testing.T) {
	p := gcProfile(t)
	m := DefaultMachine()
	base := func() *flags.Config {
		return cfgWith(t, func(c *flags.Config) {
			c.SetBool("UseConcMarkSweepGC", true)
			c.SetBool("UseParallelGC", false)
			c.SetBool("UseParNewGC", true)
			c.SetInt("CMSInitiatingOccupancyFraction", 95)
		})
	}
	occOnly := base()
	occOnly.SetBool("UseCMSInitiatingOccupancyOnly", true)
	adaptive := base()
	gOnly := computeGC(occOnly, p, hierarchy.CMS, m, 40, 1)
	gAdaptive := computeGC(adaptive, p, hierarchy.CMS, m, 40, 1)
	// With adaptive triggering the VM hedges the user's reckless 95 toward
	// its own estimate, so fewer concurrent-mode failures.
	if gAdaptive.fullGCs >= gOnly.fullGCs {
		t.Errorf("adaptive CMS trigger should hedge a reckless IOF: %.2f vs %.2f CMFs",
			gAdaptive.fullGCs, gOnly.fullGCs)
	}
}

func TestCMSWithoutParNewUsesSerialYoung(t *testing.T) {
	p := gcProfile(t)
	m := DefaultMachine()
	withPar := cfgWith(t, func(c *flags.Config) {
		c.SetBool("UseConcMarkSweepGC", true)
		c.SetBool("UseParallelGC", false)
		c.SetBool("UseParNewGC", true)
	})
	withoutPar := cfgWith(t, func(c *flags.Config) {
		c.SetBool("UseConcMarkSweepGC", true)
		c.SetBool("UseParallelGC", false)
		c.SetBool("UseParNewGC", false)
	})
	gWith := computeGC(withPar, p, hierarchy.CMS, m, 40, 1)
	gWithout := computeGC(withoutPar, p, hierarchy.CMS, m, 40, 1)
	if gWithout.stopSeconds <= gWith.stopSeconds {
		t.Errorf("serial young collections under CMS should pause more: %.2f vs %.2f",
			gWithout.stopSeconds, gWith.stopSeconds)
	}
}

func TestG1ReservePercentTradesCapacity(t *testing.T) {
	p := gcProfile(t)
	m := DefaultMachine()
	mk := func(reserve int64) gcOutcome {
		c := cfgWith(t, func(c *flags.Config) {
			c.SetBool("UseG1GC", true)
			c.SetBool("UseParallelGC", false)
			c.SetInt("G1ReservePercent", reserve)
		})
		return computeGC(c, p, hierarchy.G1, m, 40, 1)
	}
	small := mk(0)
	big := mk(45)
	// A huge reserve on a crowded heap can push it into OOM or more cycles.
	if !big.oom && big.stopSeconds <= small.stopSeconds {
		t.Errorf("45%% reserve should cost capacity: %.2fs vs %.2fs (oom=%v)",
			big.stopSeconds, small.stopSeconds, big.oom)
	}
}

func TestExplicitGCVariants(t *testing.T) {
	p := *gcProfile(t)
	p.ExplicitGCCalls = 10
	m := DefaultMachine()
	mkCMS := func(mod func(c *flags.Config)) gcOutcome {
		c := cfgWith(t, func(c *flags.Config) {
			c.SetBool("UseConcMarkSweepGC", true)
			c.SetBool("UseParallelGC", false)
			c.SetBool("UseParNewGC", true)
			if mod != nil {
				mod(c)
			}
		})
		return computeGC(c, &p, hierarchy.CMS, m, 40, 1)
	}
	plain := mkCMS(nil)
	disabled := mkCMS(func(c *flags.Config) { c.SetBool("DisableExplicitGC", true) })
	concurrent := mkCMS(func(c *flags.Config) { c.SetBool("ExplicitGCInvokesConcurrent", true) })
	if disabled.stopSeconds >= plain.stopSeconds {
		t.Error("DisableExplicitGC should remove the System.gc() pauses")
	}
	if concurrent.stopSeconds >= plain.stopSeconds {
		t.Error("ExplicitGCInvokesConcurrent should shrink the System.gc() pauses")
	}
	if concurrent.stopSeconds <= disabled.stopSeconds {
		t.Error("concurrent System.gc() still costs something")
	}
}

func TestPretenuringDivertsLargeObjects(t *testing.T) {
	p, _ := workload.ByName("startup.scimark.lu") // 45% large objects
	m := DefaultMachine()
	off := cfgWith(t, nil)
	on := cfgWith(t, func(c *flags.Config) { c.SetInt("PretenureSizeThreshold", 512<<10) })
	gOff := computeGC(off, p, hierarchy.Parallel, m, 12, 1)
	gOn := computeGC(on, p, hierarchy.Parallel, m, 12, 1)
	// Pretenuring trades young copy work for old-generation pressure; for a
	// large-object kernel the copy saving must show up in minor pauses.
	minorOff := gOff.stopSeconds / (gOff.minorGCs + 1)
	minorOn := gOn.stopSeconds / (gOn.minorGCs + 1)
	if gOn.minorGCs >= gOff.minorGCs && minorOn >= minorOff {
		t.Errorf("pretenuring should relieve the young generation: %.4f vs %.4f", minorOn, minorOff)
	}
}

func TestPermGenOOM(t *testing.T) {
	p := *gcProfile(t)
	p.ClassMetaMB = 200
	m := DefaultMachine()
	small := cfgWith(t, nil) // default MaxPermSize 85 MB
	g := computeGC(small, &p, hierarchy.Parallel, m, 40, 1)
	if !g.oom || g.oomMessage != "java.lang.OutOfMemoryError: PermGen space" {
		t.Errorf("200 MB of classes in an 85 MB permgen should OOM, got %+v", g)
	}
	big := cfgWith(t, func(c *flags.Config) { c.SetInt("MaxPermSize", 512<<20) })
	if g := computeGC(big, &p, hierarchy.Parallel, m, 40, 1); g.oom {
		t.Errorf("512 MB permgen should fit: %+v", g)
	}
}

func TestPermGenPressureCausesFullGCs(t *testing.T) {
	p := *gcProfile(t)
	p.ClassMetaMB = 80 // 94% of the default 85 MB
	m := DefaultMachine()
	crowded := computeGC(cfgWith(t, nil), &p, hierarchy.Parallel, m, 40, 1)
	p2 := p
	p2.ClassMetaMB = 30
	relaxed := computeGC(cfgWith(t, nil), &p2, hierarchy.Parallel, m, 40, 1)
	if crowded.fullGCs <= relaxed.fullGCs {
		t.Errorf("permgen pressure should add class-unloading full GCs: %.1f vs %.1f",
			crowded.fullGCs, relaxed.fullGCs)
	}
	// Disabling class unloading makes it worse.
	noUnload := cfgWith(t, func(c *flags.Config) { c.SetBool("ClassUnloading", false) })
	worse := computeGC(noUnload, &p, hierarchy.Parallel, m, 40, 1)
	if worse.fullGCs <= crowded.fullGCs {
		t.Error("ClassUnloading=false should aggravate permgen pressure")
	}
}

func TestHeapGrowthStartupCost(t *testing.T) {
	p := gcProfile(t)
	m := DefaultMachine()
	grown := cfgWith(t, func(c *flags.Config) {
		c.SetInt("MaxHeapSize", 4<<30)
		c.SetInt("InitialHeapSize", 64<<20)
	})
	pinned := cfgWith(t, func(c *flags.Config) {
		c.SetInt("MaxHeapSize", 4<<30)
		c.SetInt("InitialHeapSize", 4<<30)
	})
	gG := computeGC(grown, p, hierarchy.Parallel, m, 40, 1)
	gP := computeGC(pinned, p, hierarchy.Parallel, m, 40, 1)
	if gG.startup <= gP.startup {
		t.Error("growing the heap from 64 MB should cost startup time")
	}
	// Eager expansion (high MinHeapFreeRatio) softens it.
	eager := cfgWith(t, func(c *flags.Config) {
		c.SetInt("MaxHeapSize", 4<<30)
		c.SetInt("InitialHeapSize", 64<<20)
		c.SetInt("MinHeapFreeRatio", 70)
	})
	gE := computeGC(eager, p, hierarchy.Parallel, m, 40, 1)
	if gE.startup >= gG.startup {
		t.Error("eager expansion should cheapen heap growth")
	}
}

func TestZeroAllocationShortCircuits(t *testing.T) {
	p := *gcProfile(t)
	p.AllocRateMBps = 0
	g := computeGC(cfgWith(t, nil), &p, hierarchy.Parallel, DefaultMachine(), 40, 1)
	if g.stopSeconds != 0 || g.minorGCs != 0 {
		t.Errorf("no allocation should mean no collections: %+v", g)
	}
}

func TestGCOverheadLimitKillsThrashingRuns(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	// A tiny old generation with a big live set right at the OOM boundary
	// thrashes; construct via huge young gen.
	p := *gcProfile(t)
	p.LiveSetMB = 60
	p.MidLivedFrac = 0.3
	p.ShortLivedFrac = 0.6
	c := flags.NewConfig(reg)
	c.SetInt("MaxHeapSize", 128<<20)
	c.SetInt("InitialHeapSize", 128<<20)
	c.SetInt("NewRatio", 1)
	c.SetInt("MaxTenuringThreshold", 0)
	c.SetBool("UseAdaptiveSizePolicy", false)
	r := s.Run(c, &p, 0)
	if !r.Failed {
		// Thrash but not over the 98% line: acceptable, but GC must dominate.
		if r.GCStopSeconds < r.AppSeconds {
			t.Skipf("configuration not extreme enough to test the limit: %+v", r)
		}
	} else if r.Failure != OOMFailure {
		t.Errorf("expected OOM-class failure, got %s", r.Failure)
	}
	// With the limit off, the same run must complete (slowly).
	c2 := c.Clone()
	c2.SetBool("UseGCOverheadLimit", false)
	r2 := s.Run(c2, &p, 0)
	if r2.Failed && r2.FailureMessage == "java.lang.OutOfMemoryError: GC overhead limit exceeded" {
		t.Error("limit disabled but still enforced")
	}
}
