package jvmsim

import (
	"fmt"
	"strings"
)

// FormatGCLog synthesizes a HotSpot-style GC log for a completed run —
// the artifact a real tuning harness scrapes. The timeline is derived from
// the aggregate model: minor collections evenly spaced through the run,
// full collections interleaved at their modelled frequency, pause durations
// from the modelled means. Deterministic given the Result.
//
// The format follows -XX:+PrintGC with timestamps:
//
//	12.345: [GC 245760K->24576K(524288K), 0.0123 secs]
//	45.678: [Full GC 245760K->131072K(524288K), 0.8765 secs]
func FormatGCLog(r Result) string {
	if r.Failed {
		return ""
	}
	var b strings.Builder
	heapKB := (r.YoungMB + r.OldMB) * 1024
	youngKB := r.YoungMB * 1024

	minors := int(r.MinorGCs)
	fulls := int(r.FullGCs)
	if minors == 0 && fulls == 0 {
		return ""
	}
	events := minors + fulls
	span := r.WallSeconds - r.StartupSeconds
	if span <= 0 {
		span = r.WallSeconds
	}
	step := span / float64(events+1)

	minorPause := 0.0
	if minors > 0 {
		// Apportion stop time between minor and full pauses using the
		// modelled maximum as the full-pause estimate.
		fullTotal := r.MaxPauseSeconds * float64(fulls)
		if fullTotal > r.GCStopSeconds {
			fullTotal = r.GCStopSeconds * 0.7
		}
		minorPause = (r.GCStopSeconds - fullTotal) / float64(minors)
		if minorPause < 0 {
			minorPause = 0.001
		}
	}

	fullEvery := events + 1
	if fulls > 0 {
		fullEvery = events / fulls
		if fullEvery < 1 {
			fullEvery = 1
		}
	}
	emitted := 0
	for i := 1; i <= events; i++ {
		t := r.StartupSeconds + float64(i)*step
		if fulls > 0 && i%fullEvery == 0 && emitted < fulls {
			emitted++
			before := heapKB * 0.9
			after := r.OldMB * 1024 * 0.6
			fmt.Fprintf(&b, "%.3f: [Full GC %.0fK->%.0fK(%.0fK), %.4f secs]\n",
				t, before, after, heapKB, r.MaxPauseSeconds)
			continue
		}
		before := youngKB * 0.95
		after := youngKB * 0.1
		fmt.Fprintf(&b, "%.3f: [GC %.0fK->%.0fK(%.0fK), %.4f secs]\n",
			t, before, after, heapKB, minorPause)
	}
	return b.String()
}

// GCLogSummary parses a FormatGCLog document back into event counts and
// total pause time — the scraping half of the round trip, usable against
// real -XX:+PrintGC output of the same shape.
func GCLogSummary(log string) (minors, fulls int, stopSeconds float64, err error) {
	for _, line := range strings.Split(strings.TrimSpace(log), "\n") {
		if line == "" {
			continue
		}
		var t, before, after, total, secs float64
		if n, _ := fmt.Sscanf(line, "%f: [Full GC %fK->%fK(%fK), %f secs]",
			&t, &before, &after, &total, &secs); n == 5 {
			fulls++
			stopSeconds += secs
			continue
		}
		if n, _ := fmt.Sscanf(line, "%f: [GC %fK->%fK(%fK), %f secs]",
			&t, &before, &after, &total, &secs); n == 5 {
			minors++
			stopSeconds += secs
			continue
		}
		return 0, 0, 0, fmt.Errorf("jvmsim: unparseable GC log line %q", line)
	}
	return minors, fulls, stopSeconds, nil
}
