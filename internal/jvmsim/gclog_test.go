package jvmsim

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/flags"
	"repro/internal/workload"
)

func TestFormatGCLogRoundTrip(t *testing.T) {
	s := quietSim()
	p, _ := workload.ByName("h2")
	r := s.Run(flags.NewConfig(flags.NewRegistry()), p, 0)
	if r.Failed {
		t.Fatal("run failed")
	}
	log := FormatGCLog(r)
	if log == "" {
		t.Fatal("h2 collects; log should not be empty")
	}
	minors, fulls, stop, err := GCLogSummary(log)
	if err != nil {
		t.Fatal(err)
	}
	// Integer truncation of modelled counts, so allow off-by-one-ish.
	if diff := float64(minors+fulls) - (r.MinorGCs + r.FullGCs); diff > 2 || diff < -2 {
		t.Errorf("log events %d+%d vs model %.1f+%.1f", minors, fulls, r.MinorGCs, r.FullGCs)
	}
	if fulls == 0 {
		t.Error("h2 under defaults has full GCs; none in log")
	}
	// Reconstructed stop time within 30% of the model (apportioning between
	// minor and full pauses is approximate).
	if stop < r.GCStopSeconds*0.7 || stop > r.GCStopSeconds*1.3 {
		t.Errorf("log stop time %.2fs vs model %.2fs", stop, r.GCStopSeconds)
	}
	// Timestamps increase monotonically.
	lastT := -1.0
	for _, line := range strings.Split(strings.TrimSpace(log), "\n") {
		var ts float64
		if n, _ := fmt.Sscanf(line, "%f:", &ts); n != 1 {
			t.Fatalf("bad line %q", line)
		}
		if ts <= lastT {
			t.Fatalf("timestamps not increasing at %q", line)
		}
		lastT = ts
	}
}

func TestFormatGCLogQuietWorkload(t *testing.T) {
	r := Result{WallSeconds: 10} // no collections
	if FormatGCLog(r) != "" {
		t.Error("no collections should mean no log")
	}
	if FormatGCLog(Result{Failed: true}) != "" {
		t.Error("failed runs have no log")
	}
}

func TestGCLogSummaryRejectsGarbage(t *testing.T) {
	if _, _, _, err := GCLogSummary("not a gc log"); err == nil {
		t.Error("garbage should error")
	}
	if m, f, s, err := GCLogSummary(""); err != nil || m != 0 || f != 0 || s != 0 {
		t.Error("empty log should parse to zeros")
	}
}
