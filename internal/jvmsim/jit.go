package jvmsim

import (
	"repro/internal/flags"
	"repro/internal/workload"
)

// jitOutcome is the JIT phase model's contribution to a run.
type jitOutcome struct {
	// appSeconds is application compute time including the warm-up penalty
	// (interpreted and C1 phases) — the core of every startup benchmark.
	appSeconds float64
	// compileStall is JIT work on the critical path (queue waits, or all of
	// it with background compilation off).
	compileStall float64
	// codeCacheUsedKB is the emitted code footprint.
	codeCacheUsedKB float64
	// startupExtra adds to startup cost (undersized initial code cache).
	startupExtra float64
}

// computeJIT models warm-up and compilation.
//
// The program owes p.BaseSeconds of work at full C2 speed. Before hot code
// is compiled it runs interpreted (15× slower) or under C1 (2.2× slower).
// The amount of work executed before compilation is p.WarmupWork at the
// default CompileThreshold of 10000 and scales sublinearly with the
// threshold (on-stack replacement compiles hot loops earlier than hot
// methods). Tiered compilation replaces most of the interpreted phase with
// a C1 phase: dramatically better warm-up at the price of more compilation
// and a bigger code footprint.
func computeJIT(c *flags.Config, p *workload.Profile, m Machine, fx featureEffects) jitOutcome {
	var out jitOutcome

	interpSpeed := fx.interpSpeed / interpreterSlowdown
	c1Speed := 1 / c1Slowdown
	c2Speed := fx.compiledSpeed
	base := p.BaseSeconds

	warmRef := p.WarmupWork
	if !c.Bool("UseCounterDecay") {
		// Without decay, invocation counters accumulate monotonically and
		// thresholds are reached slightly sooner.
		warmRef *= 0.92
	}
	// OSR aggressiveness: loop-heavy code escapes the interpreter through
	// on-stack replacement; raising the OSR percentage delays that.
	osrPct := float64(c.Int("OnStackReplacePercentage"))
	osrRelief := 0.25 * p.LoopIntensity * clamp(140/osrPct, 0, 1.2)

	tiered := c.Bool("TieredCompilation")
	var methodsC2, methodsC1 float64
	if !tiered {
		thr := float64(c.Int("CompileThreshold"))
		warm := warmRef * pow(thr/10000, 0.9) * (1 - osrRelief)
		if pp := float64(c.Int("InterpreterProfilePercentage")); pp > 33 {
			warm *= 1 + (pp-33)/150
		} else if pp < 10 {
			// Too little profiling degrades the compiled code.
			c2Speed *= 0.98
		}
		warm = clamp(warm, 0, base*0.9)
		out.appSeconds = warm/interpSpeed + (base-warm)/c2Speed
		// Lower thresholds compile more lukewarm methods.
		methodsC2 = float64(p.HotMethods) * pow(10000/thr, 0.35)
	} else {
		// Tiered: a short interpreted ramp, then C1 until C2 catches up.
		interpPhase := clamp(warmRef*0.10*(1-osrRelief), 0, base*0.5)
		c1Phase := clamp(warmRef*0.9, 0, base*0.7-interpPhase)
		if c1Phase < 0 {
			c1Phase = 0
		}
		stopLevel := c.Int("TieredStopAtLevel")
		if stopLevel < 4 {
			// Stopping at C1: quick warm-up but the whole run executes at
			// C1 speed — a win only for the shortest programs.
			finalSpeed := c1Speed * 1.05
			out.appSeconds = interpPhase/interpSpeed + (base-interpPhase)/finalSpeed
			methodsC1 = float64(p.HotMethods) * 1.4
		} else {
			out.appSeconds = interpPhase/interpSpeed + c1Phase/c1Speed +
				(base-interpPhase-c1Phase)/c2Speed
			methodsC1 = float64(p.HotMethods) * 1.9
			methodsC2 = float64(p.HotMethods) * 1.1
		}
	}

	// Compilation work and its visibility.
	compileWork := methodsC2*p.CodeKBPerMethod*compileSecPerKBC2 +
		methodsC1*p.CodeKBPerMethod*compileSecPerKBC1
	ci := int(c.Int("CICompilerCount"))
	if ci < 1 {
		ci = 1
	}
	if c.Bool("BackgroundCompilation") {
		// Background compilation overlaps execution; what remains visible
		// is queue-induced waiting during warm-up.
		out.compileStall = compileWork * 0.08 / float64(ci)
		// Compiler threads can still steal CPU when the machine is busy.
		busy := clamp(float64(p.AppThreads+ci)/float64(m.Cores)-1, 0, 1)
		out.compileStall += compileWork * 0.5 * busy
	} else {
		out.compileStall = compileWork / float64(ci)
	}
	if ci > m.Cores {
		out.compileStall *= 1 + 0.1*float64(ci-m.Cores)
	}

	// Code cache.
	used := (methodsC2 + methodsC1*0.6) * p.CodeKBPerMethod * fx.codeExpansion
	out.codeCacheUsedKB = used
	reservedKB := float64(c.Int("ReservedCodeCacheSize") >> 10)
	if used > reservedKB {
		if c.Bool("UseCodeCacheFlushing") {
			// Flushing keeps compiling at the price of recompilation churn.
			out.appSeconds *= 1 + 0.06*clamp(used/reservedKB-1, 0, 1)
		} else {
			// Compilation shuts off; the overflow fraction of hot code runs
			// interpreted for the rest of the run.
			overflow := clamp((used-reservedKB)/used, 0, 0.5)
			out.appSeconds += base * overflow * (1/interpSpeed - 1) * 0.5
		}
	}
	if c.Int("InitialCodeCacheSize") < 256<<10 {
		out.startupExtra += 0.05
	}
	return out
}
