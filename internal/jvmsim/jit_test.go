package jvmsim

import (
	"testing"

	"repro/internal/flags"
	"repro/internal/workload"
)

func jitProfile(t *testing.T) *workload.Profile {
	t.Helper()
	p, ok := workload.ByName("startup.compiler.compiler")
	if !ok {
		t.Fatal("no profile")
	}
	return p
}

func fxDefault() featureEffects {
	return featureEffects{
		compiledSpeed: 1, interpSpeed: 1, allocScale: 1,
		codeExpansion: 1, overhead: 1, appPenalty: 1,
	}
}

func TestJITThresholdScalesWarmup(t *testing.T) {
	p := jitProfile(t)
	m := DefaultMachine()
	times := map[int64]float64{}
	for _, thr := range []int64{100, 1000, 10000, 100000} {
		c := cfgWith(t, func(c *flags.Config) { c.SetInt("CompileThreshold", thr) })
		times[thr] = computeJIT(c, p, m, fxDefault()).appSeconds
	}
	if !(times[100] < times[1000] && times[1000] < times[10000] && times[10000] < times[100000]) {
		t.Errorf("app time should grow with CompileThreshold: %v", times)
	}
	// Warm-up is capped: even an absurd threshold cannot exceed ~90% of the
	// run interpreted.
	if times[100000] > p.BaseSeconds*0.1+p.BaseSeconds*0.9*interpreterSlowdown+1 {
		t.Errorf("warm-up cap violated: %.1fs", times[100000])
	}
}

func TestJITTieredBeatsDefaultClassicOnWarmupBoundCode(t *testing.T) {
	p := jitProfile(t)
	m := DefaultMachine()
	classic := computeJIT(cfgWith(t, nil), p, m, fxDefault())
	tiered := computeJIT(cfgWith(t, func(c *flags.Config) {
		c.SetBool("TieredCompilation", true)
	}), p, m, fxDefault())
	if tiered.appSeconds >= classic.appSeconds*0.6 {
		t.Errorf("tiered %.1fs vs classic %.1fs", tiered.appSeconds, classic.appSeconds)
	}
	// But tiered compiles more methods into more code.
	if tiered.codeCacheUsedKB <= classic.codeCacheUsedKB {
		t.Error("tiered should have the bigger code footprint")
	}
}

func TestJITTieredStopAtLevel1(t *testing.T) {
	// Stopping at C1 helps only short runs; the steady state runs at C1
	// speed, so a compute-bound run is slower overall.
	p := *jitProfile(t)
	p.WarmupWork = 0.1 // little warm-up to win
	m := DefaultMachine()
	full := computeJIT(cfgWith(t, func(c *flags.Config) {
		c.SetBool("TieredCompilation", true)
	}), &p, m, fxDefault())
	stopped := computeJIT(cfgWith(t, func(c *flags.Config) {
		c.SetBool("TieredCompilation", true)
		c.SetInt("TieredStopAtLevel", 1)
	}), &p, m, fxDefault())
	if stopped.appSeconds <= full.appSeconds {
		t.Errorf("C1-only should lose on a compute-bound run: %.1f vs %.1f",
			stopped.appSeconds, full.appSeconds)
	}
}

func TestJITOSRReliefForLoops(t *testing.T) {
	p, _ := workload.ByName("startup.scimark.fft") // loop intensity 0.9
	m := DefaultMachine()
	def := computeJIT(cfgWith(t, nil), p, m, fxDefault())
	noOSR := computeJIT(cfgWith(t, func(c *flags.Config) {
		c.SetInt("OnStackReplacePercentage", 1000) // delay OSR massively
	}), p, m, fxDefault())
	if noOSR.appSeconds <= def.appSeconds {
		t.Errorf("delaying OSR should hurt loop kernels: %.2f vs %.2f",
			noOSR.appSeconds, def.appSeconds)
	}
}

func TestJITCounterDecay(t *testing.T) {
	p := jitProfile(t)
	m := DefaultMachine()
	decay := computeJIT(cfgWith(t, nil), p, m, fxDefault())
	noDecay := computeJIT(cfgWith(t, func(c *flags.Config) {
		c.SetBool("UseCounterDecay", false)
	}), p, m, fxDefault())
	if noDecay.appSeconds >= decay.appSeconds {
		t.Error("disabling counter decay should reach thresholds sooner")
	}
}

func TestJITBackgroundCompilation(t *testing.T) {
	p := jitProfile(t)
	m := DefaultMachine()
	bg := computeJIT(cfgWith(t, nil), p, m, fxDefault())
	fg := computeJIT(cfgWith(t, func(c *flags.Config) {
		c.SetBool("BackgroundCompilation", false)
	}), p, m, fxDefault())
	if fg.compileStall <= bg.compileStall*2 {
		t.Errorf("foreground compilation should stall much more: %.2f vs %.2f",
			fg.compileStall, bg.compileStall)
	}
}

func TestJITCompilerThreads(t *testing.T) {
	p := jitProfile(t)
	m := DefaultMachine()
	stall := func(ci int64) float64 {
		c := cfgWith(t, func(c *flags.Config) {
			c.SetInt("CICompilerCount", ci)
			c.SetBool("BackgroundCompilation", false)
		})
		return computeJIT(c, p, m, fxDefault()).compileStall
	}
	if !(stall(1) > stall(2) && stall(2) > stall(4)) {
		t.Error("more compiler threads should drain the queue faster")
	}
	if stall(12) >= stall(8)*1.05 {
		// 12 threads on 8 cores thrash; the stall should not improve and
		// may regress.
		t.Log("oversubscribed compiler threads regressed, as modeled")
	}
}

func TestJITCodeCacheFlushingVsShutoff(t *testing.T) {
	p, _ := workload.ByName("eclipse") // 4200 hot methods
	m := DefaultMachine()
	base := func(mod func(c *flags.Config)) jitOutcome {
		c := cfgWith(t, func(c *flags.Config) {
			c.SetBool("TieredCompilation", true)
			c.SetInt("ReservedCodeCacheSize", 8<<20)
			if mod != nil {
				mod(c)
			}
		})
		return computeJIT(c, p, m, fxDefault())
	}
	shutoff := base(nil)
	flushing := base(func(c *flags.Config) { c.SetBool("UseCodeCacheFlushing", true) })
	roomy := computeJIT(cfgWith(t, func(c *flags.Config) {
		c.SetBool("TieredCompilation", true)
		c.SetInt("ReservedCodeCacheSize", 256<<20)
	}), p, m, fxDefault())
	if shutoff.appSeconds <= roomy.appSeconds {
		t.Error("code-cache shutoff should be painful")
	}
	if flushing.appSeconds >= shutoff.appSeconds {
		t.Error("flushing should beat shutting compilation off")
	}
	if flushing.appSeconds <= roomy.appSeconds {
		t.Error("flushing still costs recompilation churn")
	}
}

func TestJITInterpreterProfilePercentage(t *testing.T) {
	p := jitProfile(t)
	m := DefaultMachine()
	def := computeJIT(cfgWith(t, nil), p, m, fxDefault())
	long := computeJIT(cfgWith(t, func(c *flags.Config) {
		c.SetInt("InterpreterProfilePercentage", 90)
	}), p, m, fxDefault())
	if long.appSeconds <= def.appSeconds {
		t.Error("long profiling should extend warm-up")
	}
}

func TestJITTinyInitialCodeCache(t *testing.T) {
	p := jitProfile(t)
	m := DefaultMachine()
	tiny := computeJIT(cfgWith(t, func(c *flags.Config) {
		c.SetInt("InitialCodeCacheSize", 160<<10)
	}), p, m, fxDefault())
	if tiny.startupExtra <= 0 {
		t.Error("undersized initial code cache should cost startup time")
	}
}
