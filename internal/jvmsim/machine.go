// Package jvmsim is the substrate of the reproduction: an analytical
// performance model of a JDK-7-era HotSpot JVM. Given a flag configuration
// (internal/flags) and a workload profile (internal/workload) it produces
// the wall-clock time one run would take, or the startup/OOM failure the
// real VM would produce.
//
// The model is not a cycle-accurate simulator. It reproduces the properties
// that make JVM auto-tuning a hard search problem, which is all the tuner
// can observe:
//
//   - conditional relevance: CMS knobs do nothing under the parallel
//     collector; CompileThreshold does nothing under tiered compilation;
//   - non-convex interactions: heap size × young-generation geometry ×
//     allocation rate; inlining budgets × code-cache capacity;
//   - cliffs: out-of-memory when the live set outgrows the old generation,
//     concurrent-mode failure when CMS triggers too late, code-cache
//     exhaustion when inlining is too aggressive;
//   - invalid combinations: conflicting collector selections refuse to
//     start, exactly like the real VM;
//   - noise: deterministic pseudo-random run-to-run variation.
//
// All sizes are MB and all times seconds unless a name says otherwise.
package jvmsim

// Machine describes the host the simulated JVM runs on. The zero value is
// not useful; use DefaultMachine.
type Machine struct {
	// Cores is the number of hardware threads.
	Cores int
	// RAMMB is physical memory; heaps close to it pay a paging penalty.
	RAMMB float64
}

// DefaultMachine is the reference host: an 8-core, 16 GB box comparable to
// the paper's testbed.
func DefaultMachine() Machine {
	return Machine{Cores: 8, RAMMB: 16384}
}

// Model constants. Rates are per-thread and deliberately conservative; what
// matters to the tuner is their ratios, not their absolute values.
const (
	// interpreterSlowdown is how much slower interpreted bytecode runs than
	// C2-compiled code.
	interpreterSlowdown = 15.0
	// c1Slowdown is how much slower C1-compiled code runs than C2 code.
	c1Slowdown = 2.2
	// copyRateMBps is young-collection evacuation throughput per GC thread.
	copyRateMBps = 250.0
	// fullRateMBps is full-collection mark-compact throughput per thread.
	fullRateMBps = 60.0
	// concRateMBps is concurrent marking throughput per concurrent thread.
	concRateMBps = 110.0
	// remarkRateMBps is CMS remark scanning throughput per thread.
	remarkRateMBps = 2500.0
	// compileSecPerKBC2 is C2 compilation cost per KB of emitted code.
	compileSecPerKBC2 = 0.004
	// compileSecPerKBC1 is C1 compilation cost per KB of emitted code.
	compileSecPerKBC1 = 0.0008
	// jvmBootSeconds is fixed process start + bootstrap class loading.
	jvmBootSeconds = 0.35
	// minorFixedPause is the per-scavenge fixed cost (root scanning, etc.).
	minorFixedPause = 0.002
)

// parallelEfficiency converts a worker-thread count into an effective
// speedup, with sub-linear scaling inside the core budget and a
// context-switching penalty beyond it.
func parallelEfficiency(threads, cores int) float64 {
	if threads < 1 {
		threads = 1
	}
	useful := threads
	if useful > cores {
		useful = cores
	}
	eff := pow(float64(useful), 0.88)
	if threads > cores {
		over := float64(threads - cores)
		penalty := 1 - 0.06*over
		if penalty < 0.4 {
			penalty = 0.4
		}
		eff *= penalty
	}
	return eff
}
