package jvmsim

import (
	"math"
	"testing"

	"repro/internal/flags"
	"repro/internal/hierarchy"
	"repro/internal/workload"
)

// TestMatrixEveryWorkloadEveryBranch runs all 29 built-in workloads under
// every collector × JIT-mode branch combination the hierarchy can select.
// Every combination must either complete with a sane wall time or fail
// with a classified failure — the totality guarantee the tuner's branch
// survey depends on.
func TestMatrixEveryWorkloadEveryBranch(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	tree := hierarchy.Build(reg)
	choices := tree.Choices()

	for _, p := range workload.All() {
		for _, col := range choices[0].Branches {
			for _, jit := range choices[1].Branches {
				cfg := flags.NewConfig(reg)
				col.Apply(cfg)
				jit.Apply(cfg)
				r := s.Run(cfg, p, 0)
				label := p.Name + "/" + col.Name + "+" + jit.Name
				if r.Failed {
					if r.Failure == NoFailure || r.FailureMessage == "" {
						t.Errorf("%s: failed without classification: %+v", label, r)
					}
					continue
				}
				if !r.Valid() {
					t.Errorf("%s: invalid result %+v", label, r)
					continue
				}
				if r.WallSeconds < p.BaseSeconds*0.5 {
					t.Errorf("%s: wall %.2f below half the compute floor %.2f",
						label, r.WallSeconds, p.BaseSeconds)
				}
				if r.WallSeconds > p.BaseSeconds*100 {
					t.Errorf("%s: implausible wall %.2f", label, r.WallSeconds)
				}
				if string(hierarchy.Collector(r.Collector)) != col.Name &&
					!(col.Name == "parallel" && r.Collector == "parallel") {
					t.Errorf("%s: reported collector %q", label, r.Collector)
				}
				if r.GCStopSeconds < 0 || r.CompileStallSeconds < 0 || r.StartupSeconds <= 0 {
					t.Errorf("%s: negative component in %+v", label, r)
				}
			}
		}
	}
}

// TestMatrixDefaultsAreNeverTheBestBranch checks the premise of the whole
// paper on at least a few benchmarks: some non-default branch combination
// beats the default configuration.
func TestMatrixDefaultsAreNeverTheBestBranch(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	tree := hierarchy.Build(reg)
	choices := tree.Choices()

	for _, name := range []string{"startup.compiler.compiler", "h2", "jython"} {
		p, _ := workload.ByName(name)
		def := s.Run(flags.NewConfig(reg), p, 0).WallSeconds
		best := math.Inf(1)
		for _, col := range choices[0].Branches {
			for _, jit := range choices[1].Branches {
				cfg := flags.NewConfig(reg)
				col.Apply(cfg)
				jit.Apply(cfg)
				if r := s.Run(cfg, p, 0); !r.Failed && r.WallSeconds < best {
					best = r.WallSeconds
				}
			}
		}
		if best >= def {
			t.Errorf("%s: no branch combination beats the default (%.1f vs %.1f)",
				name, best, def)
		}
	}
}

// TestMatrixMonotoneHeapOnPressuredWorkloads: for heap-pressured programs,
// growing the heap (everything else default) never makes things worse
// until the paging boundary.
func TestMatrixMonotoneHeapOnPressuredWorkloads(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	for _, name := range []string{"h2", "tradebeans", "eclipse"} {
		p, _ := workload.ByName(name)
		prev := math.Inf(1)
		for _, gb := range []int64{1, 2, 4, 8} {
			cfg := flags.NewConfig(reg)
			cfg.SetInt("MaxHeapSize", gb<<30)
			cfg.SetInt("InitialHeapSize", gb<<30)
			// Relieve permgen pressure: its class-unloading full GCs scale
			// with heap size (full collections scan the young generation
			// too), which would mask the heap-size monotonicity this test
			// isolates. eclipse exhibits exactly that trade-off — see
			// TestMatrixPermgenHeapTradeoff.
			cfg.SetInt("MaxPermSize", 256<<20)
			r := s.Run(cfg, p, 0)
			if r.Failed {
				t.Fatalf("%s at %dg failed: %+v", name, gb, r)
			}
			// Allow a small locality-penalty wiggle.
			if r.WallSeconds > prev*1.02 {
				t.Errorf("%s: wall grew from %.2f to %.2f at %dg", name, prev, r.WallSeconds, gb)
			}
			prev = r.WallSeconds
		}
	}
}

// TestMatrixPermgenHeapTradeoff documents a deliberate interaction: for a
// program with permgen pressure (eclipse, 72 MB of classes in the default
// 85 MB permgen), growing only the heap makes things *worse* — the
// class-unloading full collections it keeps triggering scan a larger young
// generation each time. The fix requires MaxPermSize, which is exactly the
// kind of coupled move whole-JVM tuning finds and subset tuning misses.
func TestMatrixPermgenHeapTradeoff(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	p, _ := workload.ByName("eclipse")
	heapOnly := flags.NewConfig(reg)
	heapOnly.SetInt("MaxHeapSize", 8<<30)
	heapOnly.SetInt("InitialHeapSize", 8<<30)
	both := heapOnly.Clone()
	both.SetInt("MaxPermSize", 256<<20)
	rHeap := s.Run(heapOnly, p, 0)
	rBoth := s.Run(both, p, 0)
	if rBoth.WallSeconds >= rHeap.WallSeconds {
		t.Errorf("raising MaxPermSize should rescue the big-heap config: %.1f vs %.1f",
			rBoth.WallSeconds, rHeap.WallSeconds)
	}
	if rHeap.FullGCs <= rBoth.FullGCs {
		t.Error("permgen pressure should show up as full GCs")
	}
}

// TestMatrixGCThreadSweetSpot: pause time improves up to the core count
// and degrades under heavy oversubscription, for every parallel-capable
// collector.
func TestMatrixGCThreadSweetSpot(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	p, _ := workload.ByName("tradebeans")
	for _, sel := range []struct {
		name  string
		apply func(c *flags.Config)
	}{
		{"parallel", func(c *flags.Config) {}},
		{"cms", func(c *flags.Config) {
			c.SetBool("UseConcMarkSweepGC", true)
			c.SetBool("UseParallelGC", false)
			c.SetBool("UseParNewGC", true)
		}},
		{"g1", func(c *flags.Config) {
			c.SetBool("UseG1GC", true)
			c.SetBool("UseParallelGC", false)
		}},
	} {
		gc := func(threads int64) float64 {
			cfg := flags.NewConfig(reg)
			sel.apply(cfg)
			cfg.SetInt("ParallelGCThreads", threads)
			r := s.Run(cfg, p, 0)
			if r.Failed {
				t.Fatalf("%s with %d threads failed: %+v", sel.name, threads, r)
			}
			return r.GCStopSeconds
		}
		if gc(1) <= gc(8) {
			t.Errorf("%s: 8 GC threads should pause less than 1", sel.name)
		}
		if gc(64) <= gc(8) {
			t.Errorf("%s: 64 GC threads on 8 cores should pause more than 8", sel.name)
		}
	}
}
