package jvmsim

import (
	"hash/fnv"
	"math"
)

// noiseFactor returns a deterministic multiplicative noise term for one
// (configuration, workload, repetition) triple: lognormal-ish with the given
// relative standard deviation. The same triple always observes the same
// noise, so experiments replay exactly; different repetitions of the same
// configuration observe different noise, so the tuner faces real
// measurement uncertainty.
func noiseFactor(configKey, workload string, rep int, relStdDev float64) float64 {
	if relStdDev <= 0 {
		return 1
	}
	h := fnv.New64a()
	h.Write([]byte(configKey))
	h.Write([]byte{0})
	h.Write([]byte(workload))
	h.Write([]byte{0})
	var buf [8]byte
	v := uint64(rep)
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
	u := h.Sum64()

	// Two U(0,1) draws from the hash, Box–Muller to a standard normal.
	u1 := float64(u>>11) / float64(1<<53)
	h.Write([]byte{1})
	u2 := float64(h.Sum64()>>11) / float64(1<<53)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	// Clamp to ±3σ so a single unlucky draw cannot dominate a tuning run.
	if z > 3 {
		z = 3
	}
	if z < -3 {
		z = -3
	}
	return math.Exp(relStdDev * z)
}

// pow is math.Pow, aliased so model files read compactly.
func pow(x, y float64) float64 { return math.Pow(x, y) }

// clamp limits v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// expDecay returns exp(-x), guarding against negative x.
func expDecay(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return math.Exp(-x)
}
