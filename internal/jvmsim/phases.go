package jvmsim

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/workload"
)

// PhaseShift is one workload drift: a multiplicative re-scaling of the
// behaviour-defining knobs of a base profile. Production JVMs do not run a
// fixed profile forever — allocation rates surge when traffic mix changes,
// live sets grow as caches fill, request handlers get heavier — and a flag
// configuration tuned before such a shift silently degrades after it. A
// PhaseShift models the shift as a deterministic profile transform, so a
// drifted workload is just another (derived) Profile and every simulator
// guarantee (purity in (config, profile, rep)) carries over unchanged.
//
// The zero value is the identity shift: every factor 0 is read as 1. All
// factors must be positive once normalized.
type PhaseShift struct {
	// AllocFactor scales AllocRateMBps: the program allocates this many
	// times faster. The dominant lever for moving the GC optimum — higher
	// allocation pressure shifts the best configuration toward bigger young
	// generations and different collectors.
	AllocFactor float64 `json:"alloc,omitempty"`
	// LiveSetFactor scales LiveSetMB: the steady live data grows (caches
	// filling, sessions accumulating), squeezing old-generation headroom.
	LiveSetFactor float64 `json:"live,omitempty"`
	// BaseFactor scales BaseSeconds: the request mix got heavier per
	// operation.
	BaseFactor float64 `json:"base,omitempty"`
	// ShortLivedFactor scales ShortLivedFrac (clamped so the lifetime
	// fractions stay valid): below 1, more of the allocation survives a
	// scavenge, increasing promotion pressure.
	ShortLivedFactor float64 `json:"short,omitempty"`
}

// normalized returns the shift with zero factors replaced by the identity 1.
func (ps PhaseShift) normalized() PhaseShift {
	if ps.AllocFactor == 0 {
		ps.AllocFactor = 1
	}
	if ps.LiveSetFactor == 0 {
		ps.LiveSetFactor = 1
	}
	if ps.BaseFactor == 0 {
		ps.BaseFactor = 1
	}
	if ps.ShortLivedFactor == 0 {
		ps.ShortLivedFactor = 1
	}
	return ps
}

// IsIdentity reports whether applying the shift would leave any profile
// unchanged.
func (ps PhaseShift) IsIdentity() bool {
	n := ps.normalized()
	return n.AllocFactor == 1 && n.LiveSetFactor == 1 && n.BaseFactor == 1 && n.ShortLivedFactor == 1
}

// Validate checks the factors are usable (positive after normalization).
func (ps PhaseShift) Validate() error {
	n := ps.normalized()
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"alloc", n.AllocFactor}, {"live", n.LiveSetFactor},
		{"base", n.BaseFactor}, {"short", n.ShortLivedFactor},
	} {
		if f.v <= 0 || f.v != f.v {
			return fmt.Errorf("jvmsim: phase shift factor %s=%v must be positive", f.name, f.v)
		}
	}
	return nil
}

// Apply derives the shifted profile from base. The base is never mutated;
// the result carries the same Name (noise streams and fingerprints key on
// behaviour fields, and the drifted workload is still "the same program",
// just behaving differently). Lifetime fractions are clamped so the derived
// profile always validates.
func (ps PhaseShift) Apply(base *workload.Profile) (*workload.Profile, error) {
	if err := ps.Validate(); err != nil {
		return nil, err
	}
	n := ps.normalized()
	p := base.Clone()
	p.AllocRateMBps *= n.AllocFactor
	p.LiveSetMB *= n.LiveSetFactor
	p.BaseSeconds *= n.BaseFactor
	p.ShortLivedFrac *= n.ShortLivedFactor
	if p.ShortLivedFrac > 1 {
		p.ShortLivedFrac = 1
	}
	if p.ShortLivedFrac+p.MidLivedFrac > 1 {
		p.MidLivedFrac = 1 - p.ShortLivedFrac
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("jvmsim: phase shift produced invalid profile: %w", err)
	}
	return p, nil
}

// String renders the shift canonically (all factors, normalized), so equal
// shifts always print identically — the checkpoint layer folds the string
// into the session fingerprint.
func (ps PhaseShift) String() string {
	n := ps.normalized()
	return fmt.Sprintf("alloc=%g,live=%g,base=%g,short=%g",
		n.AllocFactor, n.LiveSetFactor, n.BaseFactor, n.ShortLivedFactor)
}

// DefaultShift is the standard drift the chaos DSL's drift-at=N fault
// injects: a traffic surge tripling the allocation rate on a grown live
// set with a heavier request mix. Calibrated to move the GC optimum — the
// pre-shift winner is measurably stale on the shifted profile — not merely
// to scale wall time.
func DefaultShift() PhaseShift {
	return PhaseShift{AllocFactor: 3, LiveSetFactor: 2.5, BaseFactor: 1.3, ShortLivedFactor: 0.85}
}

// DefaultSchedule builds the drift script the chaos DSL's drift-at triggers
// describe: the i-th trigger opens phase i behaving as DefaultShift
// compounded i times (factors raised to the i-th power). Compounding keeps
// every phase a genuinely new regime — a repeat of the same absolute shift
// would be a no-op for the second trigger, and a no-op drift strands no
// stale winner to detect. Empty input means a stationary (nil) schedule.
func DefaultSchedule(atTrials []int) *PhaseSchedule {
	if len(atTrials) == 0 {
		return nil
	}
	d := DefaultShift()
	s := &PhaseSchedule{Shifts: make([]ScheduledShift, len(atTrials))}
	for i, at := range atTrials {
		p := float64(i + 1)
		s.Shifts[i] = ScheduledShift{
			AtTrial: at,
			Shift: PhaseShift{
				AllocFactor:      math.Pow(d.AllocFactor, p),
				LiveSetFactor:    math.Pow(d.LiveSetFactor, p),
				BaseFactor:       math.Pow(d.BaseFactor, p),
				ShortLivedFactor: math.Pow(d.ShortLivedFactor, p),
			},
		}
	}
	return s
}

// ScheduledShift is one entry of a PhaseSchedule: from trial AtTrial
// onward, the workload behaves as Shift applied to the base profile.
type ScheduledShift struct {
	// AtTrial is the dispatch index (count of trials dispatched so far) at
	// which the shift takes effect. Trial boundaries — not virtual time —
	// key the schedule so drift is reproducible at any worker count: the
	// dispatch sequence is deterministic per (seed, workers), while the
	// interleaving of virtual completion times is not a barrier.
	AtTrial int `json:"at"`
	// Shift is applied to the base profile (absolute, not cumulative: each
	// schedule entry describes the workload's behaviour outright, so
	// reordering-independent reasoning holds and a single entry fully
	// determines a phase).
	Shift PhaseShift `json:"shift"`
}

// PhaseSchedule is a deterministic drift script for one session: phase 0 is
// the base profile, phase i (1-based) is Shifts[i-1] applied to the base
// from its AtTrial onward. A nil schedule means a stationary workload.
type PhaseSchedule struct {
	Shifts []ScheduledShift `json:"shifts"`
}

// Validate checks the schedule is monotone and each shift usable.
func (s *PhaseSchedule) Validate() error {
	if s == nil {
		return nil
	}
	last := 0
	for i, sh := range s.Shifts {
		if sh.AtTrial < 1 {
			return fmt.Errorf("jvmsim: phase schedule entry %d: AtTrial %d must be ≥ 1", i, sh.AtTrial)
		}
		if sh.AtTrial <= last {
			return fmt.Errorf("jvmsim: phase schedule entry %d: AtTrial %d not increasing", i, sh.AtTrial)
		}
		if err := sh.Shift.Validate(); err != nil {
			return err
		}
		last = sh.AtTrial
	}
	return nil
}

// Phases returns the number of phases the schedule defines (1 + shifts).
func (s *PhaseSchedule) Phases() int {
	if s == nil {
		return 1
	}
	return 1 + len(s.Shifts)
}

// PhaseAt returns the phase in effect once `dispatched` trials have been
// dispatched: the number of schedule entries with AtTrial ≤ dispatched.
func (s *PhaseSchedule) PhaseAt(dispatched int) int {
	if s == nil {
		return 0
	}
	phase := 0
	for _, sh := range s.Shifts {
		if sh.AtTrial <= dispatched {
			phase++
		}
	}
	return phase
}

// ShiftAt returns the shift defining phase (1-based); phase 0 is the
// identity.
func (s *PhaseSchedule) ShiftAt(phase int) PhaseShift {
	if s == nil || phase <= 0 || phase > len(s.Shifts) {
		return PhaseShift{}
	}
	return s.Shifts[phase-1].Shift
}

// ProfileAt derives the profile the given phase runs under. A phase the
// schedule does not define is an error, not the identity — callers looking
// up a regime (fingerprinting, baselining) must not silently get the base
// profile back for a phase that never existed.
func (s *PhaseSchedule) ProfileAt(base *workload.Profile, phase int) (*workload.Profile, error) {
	if phase == 0 {
		return base, nil
	}
	if s == nil || phase < 0 || phase > len(s.Shifts) {
		return nil, fmt.Errorf("jvmsim: phase %d outside schedule (%d phases)", phase, s.Phases())
	}
	return s.ShiftAt(phase).Apply(base)
}

// String renders the schedule canonically ("@40{alloc=3,...};@70{...}");
// empty for a nil or empty schedule. The checkpoint layer folds it into the
// session fingerprint so a run cannot resume under a different drift script
// than the one it crashed with.
func (s *PhaseSchedule) String() string {
	if s == nil || len(s.Shifts) == 0 {
		return ""
	}
	parts := make([]string, len(s.Shifts))
	for i, sh := range s.Shifts {
		parts[i] = fmt.Sprintf("@%d{%s}", sh.AtTrial, sh.Shift)
	}
	return strings.Join(parts, ";")
}
