package jvmsim

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestPhaseShiftNormalizeAndValidate(t *testing.T) {
	var zero PhaseShift
	if !zero.IsIdentity() {
		t.Error("zero shift should normalize to the identity")
	}
	if err := zero.Validate(); err != nil {
		t.Errorf("identity shift should validate: %v", err)
	}
	if err := (PhaseShift{AllocFactor: -1}).Validate(); err == nil {
		t.Error("negative factor should fail validation")
	}
	if DefaultShift().IsIdentity() {
		t.Error("the default shift must actually move the workload")
	}
}

func TestPhaseShiftApply(t *testing.T) {
	base, ok := workload.ByName("xalan")
	if !ok {
		t.Fatal("no xalan workload")
	}
	sh := DefaultShift()
	p, err := sh.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != base.Name {
		t.Errorf("shifted profile renamed: %q", p.Name)
	}
	if p.AllocRateMBps != base.AllocRateMBps*sh.AllocFactor {
		t.Errorf("alloc rate %v, want %v", p.AllocRateMBps, base.AllocRateMBps*sh.AllocFactor)
	}
	if base.AllocRateMBps == p.AllocRateMBps {
		t.Error("base profile mutated or shift not applied")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("shifted profile invalid: %v", err)
	}
	// Lifetime fractions stay clamped under an extreme short-lived boost.
	q, err := (PhaseShift{ShortLivedFactor: 100}).Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if q.ShortLivedFrac > 1 || q.ShortLivedFrac+q.MidLivedFrac > 1 {
		t.Errorf("lifetime fractions unclamped: short=%v mid=%v", q.ShortLivedFrac, q.MidLivedFrac)
	}
}

func TestDefaultSchedule(t *testing.T) {
	if DefaultSchedule(nil) != nil {
		t.Error("empty trigger list should mean a stationary (nil) schedule")
	}
	s := DefaultSchedule([]int{30, 70})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Phases() != 3 {
		t.Fatalf("two triggers should define 3 phases, got %d", s.Phases())
	}
	if s.Shifts[0].AtTrial != 30 || s.Shifts[1].AtTrial != 70 {
		t.Fatalf("trigger trials not preserved: %+v", s.Shifts)
	}
	d := DefaultShift()
	if s.Shifts[0].Shift != d {
		t.Fatalf("first phase should be the default shift: %+v", s.Shifts[0].Shift)
	}
	// Each later phase compounds the default shift — shifts are absolute, so
	// a repeat of the same factors would make the second trigger a no-op.
	second := s.Shifts[1].Shift
	if second.AllocFactor != d.AllocFactor*d.AllocFactor ||
		second.LiveSetFactor != d.LiveSetFactor*d.LiveSetFactor {
		t.Fatalf("second phase should compound the default shift: %+v", second)
	}
	if second == d {
		t.Fatal("second trigger repeats the first phase's absolute shift (no-op drift)")
	}
}

func TestPhaseSchedulePhaseAt(t *testing.T) {
	s := DefaultSchedule([]int{30, 70})
	for _, tc := range []struct{ dispatched, phase int }{
		{0, 0}, {29, 0}, {30, 1}, {69, 1}, {70, 2}, {1000, 2},
	} {
		if got := s.PhaseAt(tc.dispatched); got != tc.phase {
			t.Errorf("PhaseAt(%d) = %d, want %d", tc.dispatched, got, tc.phase)
		}
	}
	var nilSched *PhaseSchedule
	if nilSched.PhaseAt(100) != 0 || nilSched.Phases() != 1 {
		t.Error("nil schedule should be the stationary single phase")
	}
}

func TestPhaseScheduleValidateAndString(t *testing.T) {
	bad := &PhaseSchedule{Shifts: []ScheduledShift{{AtTrial: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("AtTrial 0 should fail validation")
	}
	dup := &PhaseSchedule{Shifts: []ScheduledShift{{AtTrial: 5}, {AtTrial: 5}}}
	if err := dup.Validate(); err == nil {
		t.Error("non-increasing triggers should fail validation")
	}
	s := DefaultSchedule([]int{30})
	if str := s.String(); !strings.HasPrefix(str, "@30{") {
		t.Errorf("canonical form should lead with the trigger: %q", str)
	}
	var nilSched *PhaseSchedule
	if nilSched.String() != "" {
		t.Error("nil schedule should render empty")
	}
}
