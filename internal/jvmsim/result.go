package jvmsim

import (
	"fmt"
	"math"
)

// FailureKind classifies why a run produced no valid measurement.
type FailureKind string

// The ways a simulated run can fail, mirroring real JVM behaviour.
const (
	// NoFailure means the run completed.
	NoFailure FailureKind = ""
	// StartupFailure: the VM refused the flag combination and exited
	// immediately ("Conflicting collector combinations", bad sizes, …).
	StartupFailure FailureKind = "startup"
	// OOMFailure: the heap could not hold the live set; the run died with
	// java.lang.OutOfMemoryError partway through.
	OOMFailure FailureKind = "oom"
	// StackOverflowFailure: the configured thread stacks were too small for
	// the program's call depth.
	StackOverflowFailure FailureKind = "stackoverflow"
)

// Result is the outcome of one simulated run.
type Result struct {
	// WallSeconds is the end-to-end run time the harness would measure.
	// For failed runs it is the time until the failure surfaced.
	WallSeconds float64

	// Failed reports whether the run produced a usable measurement.
	Failed bool
	// Failure classifies the failure; NoFailure when Failed is false.
	Failure FailureKind
	// FailureMessage is the diagnostic a real VM would print.
	FailureMessage string

	// Component breakdown (successful runs only).
	StartupSeconds      float64 // boot, class loading, pre-touch, heap growth
	AppSeconds          float64 // application compute including warm-up penalty
	GCStopSeconds       float64 // sum of stop-the-world pauses
	ConcurrentSlowdown  float64 // fractional app slowdown from concurrent GC + barriers
	CompileStallSeconds float64 // JIT time on the critical path

	// Model diagnostics.
	Collector       string
	MinorGCs        float64
	FullGCs         float64
	MaxPauseSeconds float64
	CodeCacheUsedKB float64
	YoungMB         float64
	OldMB           float64
}

// failed builds a failure result.
func failed(kind FailureKind, wall float64, format string, args ...any) Result {
	return Result{
		WallSeconds:    wall,
		Failed:         true,
		Failure:        kind,
		FailureMessage: fmt.Sprintf(format, args...),
	}
}

// Valid reports whether the result carries a finite, positive measurement.
func (r Result) Valid() bool {
	return !r.Failed && r.WallSeconds > 0 &&
		!math.IsNaN(r.WallSeconds) && !math.IsInf(r.WallSeconds, 0)
}
