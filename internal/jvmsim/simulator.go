package jvmsim

import (
	"repro/internal/flags"
	"repro/internal/hierarchy"
	"repro/internal/workload"
)

// Simulator evaluates flag configurations against workload profiles.
// It is stateless and safe for concurrent use.
type Simulator struct {
	// Machine is the simulated host.
	Machine Machine
	// NoiseRelStdDev is the run-to-run measurement noise (relative standard
	// deviation). The DefaultNoise value matches the few-percent variation
	// real benchmark harnesses see.
	NoiseRelStdDev float64
}

// DefaultNoise is the standard measurement noise level.
const DefaultNoise = 0.015

// New returns a simulator on the default machine with default noise.
func New() *Simulator {
	return &Simulator{Machine: DefaultMachine(), NoiseRelStdDev: DefaultNoise}
}

// Run simulates one execution of profile p under configuration c.
// rep distinguishes repetitions for the noise model; runs are otherwise
// deterministic in (c, p, rep).
func (s *Simulator) Run(c *flags.Config, p *workload.Profile, rep int) Result {
	r := s.runNoiseless(c, p)
	if r.Failed {
		return r
	}
	r.WallSeconds *= noiseFactor(c.Key(), p.Name, rep, s.NoiseRelStdDev)
	return r
}

// RunReps simulates n consecutive repetitions (rep indices repBase …
// repBase+n-1) of profile p under configuration c, appending the results to
// out and returning the extended slice. The model is evaluated once and only
// the per-rep noise factor differs between repetitions, so scoring a batch
// of reps costs one simulation plus n multiplications — this is the batch
// entry point the in-process runner's hot loop uses. Results are bitwise
// identical to calling Run with each rep index.
func (s *Simulator) RunReps(c *flags.Config, p *workload.Profile, repBase, n int, out []Result) []Result {
	base := s.runNoiseless(c, p)
	if base.Failed {
		// Failures are deterministic: every repetition dies the same way.
		for i := 0; i < n; i++ {
			out = append(out, base)
		}
		return out
	}
	key := c.Key()
	for i := 0; i < n; i++ {
		r := base
		r.WallSeconds *= noiseFactor(key, p.Name, repBase+i, s.NoiseRelStdDev)
		out = append(out, r)
	}
	return out
}

// RunBatch scores a slice of configurations against one profile at a shared
// rep index, appending one Result per configuration to out and returning the
// extended slice. Searchers that propose whole generations (genetic, random
// restarts) use it to evaluate a population without per-config allocation.
func (s *Simulator) RunBatch(cfgs []*flags.Config, p *workload.Profile, rep int, out []Result) []Result {
	for _, c := range cfgs {
		out = append(out, s.Run(c, p, rep))
	}
	return out
}

// runNoiseless evaluates the full cost model for (c, p) without the
// measurement-noise factor. Run and RunReps layer noise on top.
func (s *Simulator) runNoiseless(c *flags.Config, p *workload.Profile) Result {
	if err := p.Validate(); err != nil {
		return failed(StartupFailure, 0, "invalid workload: %v", err)
	}
	// The VM validates the flag combination before doing anything else.
	if err := c.Validate(); err != nil {
		return failed(StartupFailure, 0.05, "Unrecognized or malformed VM option: %v", err)
	}
	if err := hierarchy.Validate(c); err != nil {
		return failed(StartupFailure, 0.05, "Error occurred during initialization of VM: %v", err)
	}
	col, err := hierarchy.SelectedCollector(c)
	if err != nil {
		return failed(StartupFailure, 0.05, "Error occurred during initialization of VM: %v", err)
	}

	// Thread stacks too small for the program's call depth die immediately.
	if ss := c.Int("ThreadStackSize"); ss > 0 && ss < 192 && p.CallIntensity > 0.6 {
		return failed(StackOverflowFailure, 0.5+0.05*p.BaseSeconds,
			"java.lang.StackOverflowError (ThreadStackSize=%dk)", ss)
	}

	// Heaps approaching physical memory start paging.
	heapMB := float64(c.Int("MaxHeapSize") >> 20)
	pagingPenalty := 1.0
	if limit := s.Machine.RAMMB * 0.9; heapMB > limit {
		pagingPenalty = 1 + (heapMB-limit)/s.Machine.RAMMB*5
	}

	fx := computeFeatures(c, p, s.Machine)
	jit := computeJIT(c, p, s.Machine, fx)
	appSeconds := jit.appSeconds * fx.appPenalty
	gc := computeGC(c, p, col, s.Machine, appSeconds, fx.allocScale)

	if gc.oom {
		// The run died once the live set outgrew the old generation —
		// charge a fraction of the run plus the time spent thrashing.
		wall := jvmBootSeconds + appSeconds*0.35 + 2.0
		return failed(OOMFailure, wall, "%s", gc.oomMessage)
	}
	// The GC-overhead limit kills runs that spend nearly all their time
	// collecting (98% is HotSpot's GCTimeLimit default).
	if c.Bool("UseGCOverheadLimit") &&
		gc.stopSeconds > 10 && gc.stopSeconds > 49*appSeconds {
		wall := jvmBootSeconds + appSeconds + gc.stopSeconds*0.25
		return failed(OOMFailure, wall,
			"java.lang.OutOfMemoryError: GC overhead limit exceeded")
	}

	// Oversized heaps lose a little locality even without paging.
	localityPenalty := 1.0
	if heapMB > 1024 {
		localityPenalty = 1 + 0.004*log2(heapMB/1024)
	}

	startup := jvmBootSeconds + fx.startupExtra + jit.startupExtra + gc.startup
	app := appSeconds * (1 + gc.appSlowdown) * localityPenalty
	wall := (startup + app + gc.stopSeconds + jit.compileStall) * fx.overhead * pagingPenalty

	return Result{
		WallSeconds:         wall,
		StartupSeconds:      startup,
		AppSeconds:          app,
		GCStopSeconds:       gc.stopSeconds,
		ConcurrentSlowdown:  gc.appSlowdown,
		CompileStallSeconds: jit.compileStall,
		Collector:           string(col),
		MinorGCs:            gc.minorGCs,
		FullGCs:             gc.fullGCs,
		MaxPauseSeconds:     gc.maxPause,
		CodeCacheUsedKB:     jit.codeCacheUsedKB,
		YoungMB:             gc.youngMB,
		OldMB:               gc.oldMB,
	}
}

// DefaultWall returns the mean wall time of the default configuration over
// reps repetitions — the baseline every improvement is measured against.
func (s *Simulator) DefaultWall(reg *flags.Registry, p *workload.Profile, reps int) float64 {
	if reps < 1 {
		reps = 1
	}
	c := flags.NewConfig(reg)
	sum := 0.0
	for i := 0; i < reps; i++ {
		sum += s.Run(c, p, i).WallSeconds
	}
	return sum / float64(reps)
}
