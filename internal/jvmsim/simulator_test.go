package jvmsim

import (
	"math"
	"testing"

	"repro/internal/flags"
	"repro/internal/workload"
)

func quietSim() *Simulator {
	s := New()
	s.NoiseRelStdDev = 0
	return s
}

func prof(t *testing.T, name string) *workload.Profile {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	return p
}

func TestDefaultsRunEveryWorkload(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	def := flags.NewConfig(reg)
	for _, p := range workload.All() {
		r := s.Run(def, p, 0)
		if !r.Valid() {
			t.Errorf("%s fails under default flags: %s %s", p.Name, r.Failure, r.FailureMessage)
			continue
		}
		if r.WallSeconds < p.BaseSeconds {
			t.Errorf("%s: wall %.2fs below compute floor %.2fs", p.Name, r.WallSeconds, p.BaseSeconds)
		}
	}
}

func TestDeterminismAndNoise(t *testing.T) {
	reg := flags.NewRegistry()
	def := flags.NewConfig(reg)
	p := prof(t, "h2")

	s := New() // with noise
	a := s.Run(def, p, 0)
	b := s.Run(def, p, 0)
	if a.WallSeconds != b.WallSeconds {
		t.Error("same (config, workload, rep) must be exactly reproducible")
	}
	c := s.Run(def, p, 1)
	if a.WallSeconds == c.WallSeconds {
		t.Error("different reps should observe different noise")
	}
	// Noise is bounded: ±3σ of 1.5%.
	ratio := a.WallSeconds / c.WallSeconds
	if ratio < 0.90 || ratio > 1.12 {
		t.Errorf("noise too large: ratio %.3f", ratio)
	}
}

func TestConflictingCollectorsRefuseToStart(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	c := flags.NewConfig(reg)
	c.SetBool("UseG1GC", true)
	c.SetBool("UseConcMarkSweepGC", true)
	r := s.Run(c, prof(t, "h2"), 0)
	if !r.Failed || r.Failure != StartupFailure {
		t.Errorf("conflicting collectors should be a startup failure, got %+v", r)
	}
	if r.WallSeconds > 1 {
		t.Error("startup failures should be fast")
	}
}

func TestOOMWhenHeapTooSmall(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	c := flags.NewConfig(reg)
	c.SetInt("MaxHeapSize", 128<<20)
	c.SetInt("InitialHeapSize", 64<<20)
	r := s.Run(c, prof(t, "h2"), 0) // 230 MB live set cannot fit
	if !r.Failed || r.Failure != OOMFailure {
		t.Errorf("expected OOM, got %+v", r)
	}
}

func TestStackOverflowOnTinyStacks(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	c := flags.NewConfig(reg)
	c.SetInt("ThreadStackSize", 64)
	r := s.Run(c, prof(t, "startup.compiler.compiler"), 0) // deep call chains
	if !r.Failed || r.Failure != StackOverflowFailure {
		t.Errorf("expected stack overflow, got %+v", r)
	}
	// A loop-bound kernel survives small stacks.
	r2 := s.Run(c, prof(t, "startup.scimark.fft"), 0)
	if r2.Failed {
		t.Errorf("shallow-call program should survive: %+v", r2)
	}
}

func TestTieredCompilationHelpsStartup(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	def := flags.NewConfig(reg)
	tiered := flags.NewConfig(reg)
	tiered.SetBool("TieredCompilation", true)
	p := prof(t, "startup.compiler.compiler")
	d := s.Run(def, p, 0)
	tr := s.Run(tiered, p, 0)
	if tr.WallSeconds >= d.WallSeconds*0.7 {
		t.Errorf("tiered should cut warm-up dramatically: %.1fs vs %.1fs", tr.WallSeconds, d.WallSeconds)
	}
}

func TestLowerCompileThresholdHelpsStartup(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	def := flags.NewConfig(reg)
	low := flags.NewConfig(reg)
	low.SetInt("CompileThreshold", 1000)
	p := prof(t, "startup.xml.validation")
	if s.Run(low, p, 0).WallSeconds >= s.Run(def, p, 0).WallSeconds {
		t.Error("lower CompileThreshold should shorten warm-up-dominated runs")
	}
}

func TestBiggerHeapHelpsGCBoundWorkload(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	def := flags.NewConfig(reg)
	big := flags.NewConfig(reg)
	big.SetInt("MaxHeapSize", 4<<30)
	big.SetInt("InitialHeapSize", 4<<30)
	p := prof(t, "h2")
	d, b := s.Run(def, p, 0), s.Run(big, p, 0)
	if b.WallSeconds >= d.WallSeconds*0.9 {
		t.Errorf("4g heap should relieve h2 substantially: %.1fs vs %.1fs", b.WallSeconds, d.WallSeconds)
	}
	if b.FullGCs >= d.FullGCs {
		t.Error("bigger heap should mean fewer full GCs")
	}
}

func TestSerialCollectorPausesAreWorse(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	serial := flags.NewConfig(reg)
	serial.SetBool("UseSerialGC", true)
	serial.SetBool("UseParallelGC", false)
	def := flags.NewConfig(reg)
	p := prof(t, "tradebeans")
	rs, rd := s.Run(serial, p, 0), s.Run(def, p, 0)
	if !rs.Valid() || !rd.Valid() {
		t.Fatalf("runs failed: %+v %+v", rs, rd)
	}
	if rs.GCStopSeconds <= rd.GCStopSeconds {
		t.Errorf("serial GC should pause more than parallel: %.1fs vs %.1fs",
			rs.GCStopSeconds, rd.GCStopSeconds)
	}
}

func TestCollectorIsReported(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	for _, c := range []struct {
		set  string
		want string
	}{{"UseG1GC", "g1"}, {"UseConcMarkSweepGC", "cms"}, {"UseSerialGC", "serial"}} {
		cfg := flags.NewConfig(reg)
		cfg.SetBool(c.set, true)
		cfg.SetBool("UseParallelGC", false)
		r := s.Run(cfg, prof(t, "h2"), 0)
		if r.Collector != c.want {
			t.Errorf("%s: collector reported %q", c.set, r.Collector)
		}
	}
}

func TestVerificationFlagsCostTime(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	def := flags.NewConfig(reg)
	verify := flags.NewConfig(reg)
	verify.SetBool("VerifyBeforeGC", true)
	verify.SetBool("VerifyAfterGC", true)
	p := prof(t, "xalan")
	d, v := s.Run(def, p, 0), s.Run(verify, p, 0)
	if v.WallSeconds <= d.WallSeconds*1.1 {
		t.Errorf("heap verification should cost >10%%: %.1fs vs %.1fs", v.WallSeconds, d.WallSeconds)
	}
}

func TestInlineStarvationHurtsCallBoundCode(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	def := flags.NewConfig(reg)
	starved := flags.NewConfig(reg)
	starved.SetInt("MaxInlineSize", 1)
	starved.SetInt("FreqInlineSize", 50)
	p := prof(t, "jython") // call intensity 0.85
	if s.Run(starved, p, 0).WallSeconds <= s.Run(def, p, 0).WallSeconds {
		t.Error("starving the inliner should hurt call-bound code")
	}
}

func TestCodeCacheExhaustionCliff(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	tiny := flags.NewConfig(reg)
	tiny.SetInt("ReservedCodeCacheSize", 8<<20)
	tiny.SetBool("TieredCompilation", true)
	p := prof(t, "eclipse") // 4200 hot methods × ~2 KB ≫ 8 MB
	def := flags.NewConfig(reg)
	def.SetBool("TieredCompilation", true)
	rt, rd := s.Run(tiny, p, 0), s.Run(def, p, 0)
	if rt.WallSeconds <= rd.WallSeconds*1.05 {
		t.Errorf("code-cache exhaustion should be a cliff: %.1fs vs %.1fs", rt.WallSeconds, rd.WallSeconds)
	}
	if rt.CodeCacheUsedKB <= 8<<10 {
		t.Errorf("model should report overflowing footprint, got %.0f KB", rt.CodeCacheUsedKB)
	}
}

func TestCMSConcurrentModeFailureWhenTriggeredLate(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	base := flags.NewConfig(reg)
	base.SetBool("UseConcMarkSweepGC", true)
	base.SetBool("UseParallelGC", false)
	base.SetBool("UseParNewGC", true)
	base.SetBool("UseCMSInitiatingOccupancyOnly", true)

	early := base.Clone()
	early.SetInt("CMSInitiatingOccupancyFraction", 40)
	late := base.Clone()
	late.SetInt("CMSInitiatingOccupancyFraction", 95)

	p := prof(t, "h2")
	re, rl := s.Run(early, p, 0), s.Run(late, p, 0)
	if !re.Valid() || !rl.Valid() {
		t.Fatalf("CMS runs failed: %+v %+v", re, rl)
	}
	if rl.FullGCs <= re.FullGCs {
		t.Errorf("late CMS trigger should cause more concurrent-mode failures: %.1f vs %.1f",
			rl.FullGCs, re.FullGCs)
	}
}

func TestExplicitGCFlagMatters(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	p := *prof(t, "pmd")
	p.ExplicitGCCalls = 20
	def := flags.NewConfig(reg)
	dis := flags.NewConfig(reg)
	dis.SetBool("DisableExplicitGC", true)
	if s.Run(dis, &p, 0).WallSeconds >= s.Run(def, &p, 0).WallSeconds {
		t.Error("DisableExplicitGC should pay off when the app calls System.gc()")
	}
}

func TestGCThreadOversubscriptionHurts(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	def := flags.NewConfig(reg) // 8 threads on 8 cores
	over := flags.NewConfig(reg)
	over.SetInt("ParallelGCThreads", 64)
	p := prof(t, "tradebeans")
	rd, ro := s.Run(def, p, 0), s.Run(over, p, 0)
	if ro.GCStopSeconds <= rd.GCStopSeconds {
		t.Errorf("64 GC threads on 8 cores should pause longer: %.2fs vs %.2fs",
			ro.GCStopSeconds, rd.GCStopSeconds)
	}
}

func TestHugeHeapPaysPagingPenalty(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	huge := flags.NewConfig(reg)
	huge.SetInt("MaxHeapSize", 8<<30) // vs 16 GB RAM ⇒ fine
	p := prof(t, "h2")
	r8 := s.Run(huge, p, 0)
	if !r8.Valid() {
		t.Fatalf("8g heap should work: %+v", r8)
	}
	// Shrink RAM so the same heap crowds it.
	small := quietSim()
	small.Machine.RAMMB = 8192
	rp := small.Run(huge, p, 0)
	if rp.WallSeconds <= r8.WallSeconds {
		t.Error("heap above 90% of RAM should page")
	}
}

func TestParallelEfficiency(t *testing.T) {
	if parallelEfficiency(1, 8) != 1 {
		t.Error("one thread must have efficiency 1")
	}
	if e4, e8 := parallelEfficiency(4, 8), parallelEfficiency(8, 8); !(e8 > e4 && e4 > 1) {
		t.Error("efficiency should increase with threads within the core budget")
	}
	if parallelEfficiency(16, 8) >= parallelEfficiency(8, 8) {
		t.Error("oversubscription should not improve efficiency")
	}
	if parallelEfficiency(0, 8) != 1 {
		t.Error("degenerate thread count should clamp to 1")
	}
	if parallelEfficiency(64, 8) < 0.4*parallelEfficiency(8, 8)*0.4 {
		t.Error("oversubscription penalty should be bounded")
	}
}

func TestNoiseFactorProperties(t *testing.T) {
	if noiseFactor("a", "b", 0, 0) != 1 {
		t.Error("zero stddev must be exactly 1")
	}
	// Deterministic.
	if noiseFactor("k", "w", 3, 0.015) != noiseFactor("k", "w", 3, 0.015) {
		t.Error("noise must be deterministic")
	}
	// Roughly centered and bounded.
	sum := 0.0
	for i := 0; i < 2000; i++ {
		f := noiseFactor("cfg", "wl", i, 0.015)
		if f < math.Exp(-3*0.015-1e-9) || f > math.Exp(3*0.015+1e-9) {
			t.Fatalf("noise %v outside ±3σ bounds", f)
		}
		sum += f
	}
	mean := sum / 2000
	if mean < 0.99 || mean > 1.01 {
		t.Errorf("noise mean %.4f should be ≈1", mean)
	}
}

func TestDefaultWall(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	p := prof(t, "fop")
	w := s.DefaultWall(reg, p, 3)
	r := s.Run(flags.NewConfig(reg), p, 0)
	if math.Abs(w-r.WallSeconds) > 1e-9 {
		t.Errorf("noiseless DefaultWall %.3f should equal a single run %.3f", w, r.WallSeconds)
	}
	if s.DefaultWall(reg, p, 0) <= 0 {
		t.Error("reps<1 should clamp to 1 and still measure")
	}
}

func TestResultValid(t *testing.T) {
	if (Result{WallSeconds: 1}).Valid() != true {
		t.Error("plain result should be valid")
	}
	if (Result{WallSeconds: -1}).Valid() {
		t.Error("negative wall invalid")
	}
	if (Result{WallSeconds: math.NaN()}).Valid() {
		t.Error("NaN wall invalid")
	}
	if (Result{WallSeconds: 1, Failed: true}).Valid() {
		t.Error("failed result invalid")
	}
}

// Property: across many random-but-structurally-valid configurations the
// simulator never returns NaN/Inf and never goes below the compute floor.
func TestSimulatorTotalityOverRandomConfigs(t *testing.T) {
	s := quietSim()
	reg := flags.NewRegistry()
	tun := reg.TunableNames()
	p := prof(t, "tomcat")
	rng := newTestRand(1234)
	for trial := 0; trial < 300; trial++ {
		c := flags.NewConfig(reg)
		// Mutate a random handful of flags.
		for k := 0; k < 6; k++ {
			flags.MutateFlag(c, tun[rng.Intn(len(tun))], rng)
		}
		r := s.Run(c, p, trial)
		if r.Failed {
			continue // crashes are legitimate outcomes
		}
		if !r.Valid() {
			t.Fatalf("invalid non-failed result for %s: %+v", c.Key(), r)
		}
		if r.WallSeconds > 1e6 {
			t.Fatalf("implausible wall %.1f for %s", r.WallSeconds, c.Key())
		}
	}
}
