package jvmsim

import "math/rand"

// newTestRand returns a seeded PRNG for tests.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
