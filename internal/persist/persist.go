// Package persist serializes tuning outcomes to JSON so sessions can be
// archived, diffed, and re-applied: the winning flag set is stored as the
// exact java-style command line, which round-trips through
// flags.ParseArgs back into a Config.
package persist

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/flags"
)

// FormatVersion identifies the on-disk schema; bump on breaking change.
const FormatVersion = 1

// SavedOutcome is the JSON form of a tuning session's result.
type SavedOutcome struct {
	Version        int     `json:"version"`
	Workload       string  `json:"workload"`
	Searcher       string  `json:"searcher"`
	DefaultWall    float64 `json:"default_wall_seconds"`
	BestWall       float64 `json:"best_wall_seconds"`
	ImprovementPct float64 `json:"improvement_pct"`
	Speedup        float64 `json:"speedup"`
	Trials         int     `json:"trials"`
	Failures       int     `json:"failures"`
	CacheHits      int     `json:"cache_hits"`
	Flakes         int     `json:"flakes,omitempty"`
	Attempts       int     `json:"attempts,omitempty"`
	// Degraded marks a session that ended early (budget or wall-clock
	// expiry, best-effort cancellation, stall); the outcome is the best
	// found by then. All omitempty: archives from complete runs — and all
	// older archives — serialize without them.
	Degraded       bool              `json:"degraded,omitempty"`
	DegradedReason string            `json:"degraded_reason,omitempty"`
	Quarantined    int               `json:"quarantined,omitempty"`
	Hedges         int               `json:"hedges,omitempty"`
	HedgeWins      int               `json:"hedge_wins,omitempty"`
	ElapsedSeconds float64           `json:"elapsed_seconds"`
	CommandLine    []string          `json:"command_line"`
	BestFlags      map[string]string `json:"best_flags"`
	Trace          []core.TracePoint `json:"trace,omitempty"`
	// Transfer carries warm-start provenance (hotspot.TransferInfo) when
	// the session ran against a knowledge base. Kept as raw JSON so this
	// package needs no dependency on the layer that defines it; omitted —
	// and byte-identical to older archives — for cold sessions.
	Transfer json.RawMessage `json:"transfer,omitempty"`
	// Epochs carries the per-epoch breakdown of a drift-enabled session
	// (hotspot.Epoch), raw JSON like Transfer. Omitted — and byte-identical
	// to older archives — when drift detection was off.
	Epochs json.RawMessage `json:"epochs,omitempty"`
}

// FromOutcome converts a session outcome for serialization.
func FromOutcome(o *core.Outcome) *SavedOutcome {
	s := &SavedOutcome{
		Version:        FormatVersion,
		Workload:       o.Workload,
		Searcher:       o.Searcher,
		DefaultWall:    o.DefaultWall,
		BestWall:       o.BestWall,
		ImprovementPct: o.ImprovementPct,
		Speedup:        o.Speedup,
		Trials:         o.Trials,
		Failures:       o.Failures,
		CacheHits:      o.CacheHits,
		Flakes:         o.Flakes,
		Attempts:       o.Attempts,
		Degraded:       o.Degraded,
		DegradedReason: o.DegradedReason,
		Quarantined:    o.Quarantined,
		Hedges:         o.Hedges,
		HedgeWins:      o.HedgeWins,
		ElapsedSeconds: o.Elapsed,
		Trace:          o.Trace,
		BestFlags:      map[string]string{},
	}
	if o.Best != nil {
		s.CommandLine = o.Best.CommandLine()
		reg := o.Best.Registry()
		for _, name := range o.Best.Diff(flags.NewConfig(reg)) {
			f := reg.Lookup(name)
			v, _ := o.Best.Get(name)
			s.BestFlags[name] = v.String(f.Type)
		}
	}
	return s
}

// Config rebuilds the winning configuration over reg from the stored
// command line.
func (s *SavedOutcome) Config(reg *flags.Registry) (*flags.Config, error) {
	return flags.ParseArgs(reg, s.CommandLine)
}

// Write serializes to w as indented JSON.
func (s *SavedOutcome) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Read deserializes from r, rejecting unknown schema versions.
func Read(r io.Reader) (*SavedOutcome, error) {
	var s SavedOutcome
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if s.Version != FormatVersion {
		return nil, fmt.Errorf("persist: unsupported format version %d (want %d)",
			s.Version, FormatVersion)
	}
	return &s, nil
}

// SaveFile writes the outcome to path atomically: the JSON goes to a
// temporary file in the same directory, is fsynced, and is renamed over
// path. A crash mid-save leaves either the old file or the new one, never
// a truncated hybrid.
func SaveFile(path string, o *core.Outcome) error {
	return FromOutcome(o).SaveFile(path)
}

// SaveFile writes s to path with the same atomic temp-file + rename
// protocol as the package-level SaveFile. Use this form when the caller
// decorates the converted outcome (e.g. with transfer provenance) before
// archiving it.
func (s *SavedOutcome) SaveFile(path string) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer func() {
		if f != nil {
			f.Close()
			os.Remove(f.Name())
		}
	}()
	if err := s.Write(f); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	tmp := f.Name()
	f = nil
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// LoadFile reads an outcome from path.
func LoadFile(path string) (*SavedOutcome, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	return Read(f)
}
