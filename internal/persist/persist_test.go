package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/workload"
)

func sampleOutcome(t *testing.T) *core.Outcome {
	t.Helper()
	p, _ := workload.ByName("fop")
	s := &core.Session{
		Runner:        runner.NewInProcess(jvmsim.New(), p),
		Searcher:      core.NewHierarchical(),
		BudgetSeconds: 800,
		Seed:          3,
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	out := sampleOutcome(t)
	saved := FromOutcome(out)

	var buf bytes.Buffer
	if err := saved.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Workload != out.Workload || loaded.BestWall != out.BestWall ||
		loaded.Trials != out.Trials || loaded.ImprovementPct != out.ImprovementPct {
		t.Errorf("round trip lost fields: %+v vs outcome %+v", loaded, out)
	}
	if len(loaded.Trace) != len(out.Trace) {
		t.Error("trace not preserved")
	}

	// The stored command line must rebuild the exact configuration.
	reg := flags.NewRegistry()
	cfg, err := loaded.Config(reg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Key() != out.Best.Key() {
		t.Errorf("config round trip changed:\n %s\n %s", cfg.Key(), out.Best.Key())
	}
}

func TestBestFlagsMapMatchesDiff(t *testing.T) {
	out := sampleOutcome(t)
	saved := FromOutcome(out)
	reg := out.Best.Registry()
	diff := out.Best.Diff(flags.NewConfig(reg))
	if len(saved.BestFlags) != len(diff) {
		t.Errorf("BestFlags has %d entries, diff has %d", len(saved.BestFlags), len(diff))
	}
	for _, name := range diff {
		if _, ok := saved.BestFlags[name]; !ok {
			t.Errorf("flag %s missing from BestFlags", name)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	out := sampleOutcome(t)
	path := filepath.Join(t.TempDir(), "outcome.json")
	if err := SaveFile(path, out); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Searcher != "hierarchical" {
		t.Errorf("loaded searcher %q", loaded.Searcher)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

// TestSaveFileAtomic pins the crash-safety contract: saving never leaves
// temp files behind, overwrites in place, and a failed save cannot destroy
// the previous file.
func TestSaveFileAtomic(t *testing.T) {
	out := sampleOutcome(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "outcome.json")
	for i := 0; i < 2; i++ { // second pass overwrites the first
		if err := SaveFile(path, out); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "outcome.json" {
		t.Fatalf("save left extra files behind: %v", entries)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("overwritten file unreadable: %v", err)
	}

	// A save into a nonexistent directory fails without touching anything.
	if err := SaveFile(filepath.Join(dir, "no", "dir", "x.json"), out); err == nil {
		t.Fatal("save into a missing directory should error")
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("failed save damaged the existing file: %v", err)
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage should error")
	}
	if _, err := Read(strings.NewReader(`{"version": 999}`)); err == nil {
		t.Error("future version should be rejected")
	}
}

func TestFromOutcomeWithoutBest(t *testing.T) {
	s := FromOutcome(&core.Outcome{Workload: "w"})
	if s.CommandLine != nil || len(s.BestFlags) != 0 {
		t.Error("nil Best should serialize cleanly")
	}
}
