package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file instead when -update is set:
//
//	go test ./internal/report -run Golden -update
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from its golden file (re-run with -update if intended)\n--- got\n%s\n--- want\n%s",
			name, got, want)
	}
}

// goldenTable is a fixed table exercising every cell type and alignment
// path: strings, floats, ints, bools, footers, and a numeric-looking string
// column.
func goldenTable() *Table {
	t := NewTable("Table G: deterministic rendering",
		"Benchmark", "Wall(s)", "Speedup", "Trials", "GC", "Tiered")
	t.AddRow("fop", 2.375, "1.18x", 412, "g1", true)
	t.AddRow("h2", 11.5, "1.30x", 388, "parallel", false)
	t.AddRow("startup.helloworld", 0.875, "1.02x", 95, "serial", true)
	t.AddFooter("average", "", "1.17x", "", "", "")
	return t
}

func TestTableGoldenText(t *testing.T) {
	checkGolden(t, "table_text", goldenTable().String())
}

func TestTableGoldenMarkdown(t *testing.T) {
	checkGolden(t, "table_markdown", goldenTable().Markdown())
}

func goldenSeries() []*Series {
	a := &Series{Name: "h2"}
	b := &Series{Name: "fop"}
	for i := 0; i <= 8; i++ {
		x := float64(i * 25)
		a.Add(x, float64(i)*1.25)
		b.Add(x, 8-float64(i)*0.5)
	}
	return []*Series{a, b}
}

func TestCSVGolden(t *testing.T) {
	s := goldenSeries()
	checkGolden(t, "series_csv", CSV("minutes", s...))
}

func TestAsciiChartGolden(t *testing.T) {
	s := goldenSeries()
	checkGolden(t, "ascii_chart", AsciiChart("improvement vs time", 48, 10, s...))
}
