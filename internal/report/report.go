// Package report renders the experiment results as aligned ASCII tables
// (what cmd/experiments prints, mirroring the paper's tables) and CSV
// series (the data behind the paper's figures).
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
	footers [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a data row. Cells render with %v; float64 cells render
// with two decimals.
func (t *Table) AddRow(cells ...any) {
	t.rows = append(t.rows, formatCells(cells))
}

// AddFooter appends a summary row, separated from the data rows by a rule.
func (t *Table) AddFooter(cells ...any) {
	t.footers = append(t.footers, formatCells(cells))
}

func formatCells(cells []any) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = fmt.Sprintf("%.2f", v)
		case string:
			out[i] = v
		default:
			out[i] = fmt.Sprintf("%v", v)
		}
	}
	return out
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	grow := func(rows [][]string) {
		for _, r := range rows {
			for i, c := range r {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
	}
	grow(t.rows)
	grow(t.footers)

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// Right-align numeric-looking cells, left-align text.
			if isNumeric(c) {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	rule := 0
	for _, w := range widths {
		rule += w + 2
	}
	b.WriteString(strings.Repeat("-", rule-2))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	if len(t.footers) > 0 {
		b.WriteString(strings.Repeat("-", rule-2))
		b.WriteByte('\n')
		for _, r := range t.footers {
			writeRow(r)
		}
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown: title as a
// heading, footer rows in bold.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	writeRow := func(cells []string, bold bool) {
		b.WriteByte('|')
		for i := range t.Headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			c = strings.ReplaceAll(c, "|", "\\|")
			if bold && c != "" {
				c = "**" + c + "**"
			}
			b.WriteByte(' ')
			b.WriteString(c)
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers, false)
	b.WriteByte('|')
	for range t.Headers {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r, false)
	}
	for _, r := range t.footers {
		writeRow(r, true)
	}
	return b.String()
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	dot, digit := false, false
	for i, r := range s {
		switch {
		case r >= '0' && r <= '9':
			digit = true
		case r == '-' && i == 0:
		case r == '.' && !dot:
			dot = true
		case r == '%' && i == len(s)-1:
		default:
			return false
		}
	}
	return digit
}

// Series is a named sequence of (x, y) points for figure data.
type Series struct {
	Name   string
	Points []Point
}

// Point is one (x, y) sample.
type Point struct{ X, Y float64 }

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// CSV renders one or more series sharing an x column into CSV text:
// x,<name1>,<name2>,… with one row per distinct x (missing values empty).
func CSV(xLabel string, series ...*Series) string {
	var b strings.Builder
	b.WriteString(xLabel)
	for _, s := range series {
		b.WriteByte(',')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')

	// Collect distinct x values in order of first appearance, ascending.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sortFloats(xs)
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range series {
			b.WriteByte(',')
			if y, ok := valueAt(s, x); ok {
				fmt.Fprintf(&b, "%g", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func valueAt(s *Series, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// AsciiChart renders series as a crude monospace line chart, good enough to
// eyeball convergence curves in a terminal. Height is rows, width columns.
func AsciiChart(title string, width, height int, series ...*Series) string {
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	minX, maxX, minY, maxY := bounds(series)
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "*+ox#@"
	for si, s := range series {
		mark := marks[si%len(marks)]
		for _, p := range s.Points {
			col := int((p.X - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((p.Y-minY)/(maxY-minY)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	fmt.Fprintf(&b, "y: %.4g .. %.4g\n", minY, maxY)
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "x: %.4g .. %.4g", minX, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "   [%c] %s", marks[si%len(marks)], s.Name)
	}
	b.WriteByte('\n')
	return b.String()
}

func bounds(series []*Series) (minX, maxX, minY, maxY float64) {
	first := true
	for _, s := range series {
		for _, p := range s.Points {
			if first {
				minX, maxX, minY, maxY = p.X, p.X, p.Y, p.Y
				first = false
				continue
			}
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
			if p.Y < minY {
				minY = p.Y
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
	}
	return
}
