package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Results", "Benchmark", "Default(s)", "Tuned(s)", "Improvement")
	tb.AddRow("h2", 73.5, 41.2, "44.0%")
	tb.AddRow("fop", 27.8, 21.9, "21.3%")
	tb.AddFooter("average", "", "", "32.6%")
	out := tb.String()

	for _, want := range []string{"Results", "Benchmark", "h2", "73.50", "21.3%", "average"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	// Data and footer separated by rules: at least two rule lines.
	if strings.Count(out, "---") < 2 {
		t.Error("expected separators in output")
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "Name", "Value")
	tb.AddRow("a-very-long-benchmark-name", 1.0)
	tb.AddRow("b", 100.0)
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	// All lines equal width for the first column block: the short name must
	// be padded. Verify the numeric column is right-aligned (ends aligned).
	if len(lines) < 4 {
		t.Fatalf("unexpected shape: %v", lines)
	}
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("rows not aligned: %q vs %q", lines[2], lines[3])
	}
}

func TestIsNumeric(t *testing.T) {
	cases := map[string]bool{
		"123": true, "-1.5": true, "42.0%": true, "": false,
		"abc": false, "1.2.3": false, "%": false, "12x": false, "-": false,
	}
	for in, want := range cases {
		if got := isNumeric(in); got != want {
			t.Errorf("isNumeric(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestCSV(t *testing.T) {
	a := &Series{Name: "hier"}
	a.Add(0, 100)
	a.Add(10, 80)
	b := &Series{Name: "flat"}
	b.Add(0, 100)
	b.Add(20, 90)
	got := CSV("minutes", a, b)
	want := "minutes,hier,flat\n0,100,100\n10,80,\n20,,90\n"
	if got != want {
		t.Errorf("CSV output:\n%q\nwant:\n%q", got, want)
	}
}

func TestCSVEmpty(t *testing.T) {
	if got := CSV("x"); got != "x\n" {
		t.Errorf("empty CSV = %q", got)
	}
}

func TestCSVSortsX(t *testing.T) {
	s := &Series{Name: "s"}
	s.Add(30, 3)
	s.Add(10, 1)
	s.Add(20, 2)
	got := CSV("x", s)
	want := "x,s\n10,1\n20,2\n30,3\n"
	if got != want {
		t.Errorf("CSV sorting:\n%q", got)
	}
}

func TestAsciiChart(t *testing.T) {
	s := &Series{Name: "conv"}
	for i := 0; i < 20; i++ {
		s.Add(float64(i), 100-float64(i))
	}
	out := AsciiChart("convergence", 40, 8, s)
	if !strings.Contains(out, "convergence") || !strings.Contains(out, "conv") {
		t.Error("chart missing labels")
	}
	if !strings.Contains(out, "*") {
		t.Error("chart missing data marks")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
}

func TestAsciiChartDegenerate(t *testing.T) {
	s := &Series{Name: "flatline"}
	s.Add(1, 5)
	s.Add(2, 5)
	out := AsciiChart("", 5, 2, s) // forces min width/height clamps
	if out == "" {
		t.Error("degenerate chart should still render")
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Results", "Benchmark", "Improvement")
	tb.AddRow("h2", "44.0%")
	tb.AddRow("a|b", "1%") // pipe must be escaped
	tb.AddFooter("average", "24.3%")
	out := tb.Markdown()
	for _, want := range []string{
		"### Results",
		"| Benchmark | Improvement |",
		"|---|---|",
		"| h2 | 44.0% |",
		"| a\\|b | 1% |",
		"| **average** | **24.3%** |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestTableMarkdownNoTitle(t *testing.T) {
	tb := NewTable("", "A")
	tb.AddRow("x")
	if strings.Contains(tb.Markdown(), "###") {
		t.Error("no heading expected without a title")
	}
}

func TestTableMarkdownShortRow(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRow("only-one") // fewer cells than headers must not panic
	out := tb.Markdown()
	if !strings.Contains(out, "| only-one |  |  |") {
		t.Errorf("short row rendering:\n%s", out)
	}
}
