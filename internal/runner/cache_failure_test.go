package runner

import (
	"testing"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/workload"
)

// crashConfig returns a configuration that OOMs the h2 workload: a heap far
// below its ~238 MB live set.
func crashConfig() *flags.Config {
	cfg := flags.NewConfig(flags.NewRegistry())
	cfg.SetInt("MaxHeapSize", 128<<20)
	cfg.SetInt("InitialHeapSize", 64<<20)
	return cfg
}

// Regression: failed measurements must be cached like successful ones. The
// old cache-hit test (len(Walls) >= reps) could never match a failure —
// failures carry no walls — so every re-proposal of a known-crashing config
// re-paid the launch-and-crash cost, silently draining the tuning budget.
func TestInProcessCachesFailures(t *testing.T) {
	r, _ := newRunner(t, "h2")
	first := r.Measure(crashConfig(), 3)
	if !first.Failed || first.Failure != jvmsim.OOMFailure {
		t.Fatalf("expected OOM, got %+v", first)
	}
	elapsed := r.Elapsed()

	second := r.Measure(crashConfig().Clone(), 3)
	if !second.FromCache {
		t.Error("second measurement of a crashing config must replay from the cache")
	}
	if second.CostSeconds != 0 || r.Elapsed() != elapsed {
		t.Errorf("re-measuring a known-bad config must cost zero budget (cost %.2f)", second.CostSeconds)
	}
	if !second.Failed || second.Failure != first.Failure {
		t.Errorf("cached replay must preserve the failure: %+v", second)
	}

	// Fewer requested reps hit the same cached failure.
	if m := r.Measure(crashConfig(), 1); !m.FromCache || m.CostSeconds != 0 {
		t.Error("a cached failure satisfies any rep count")
	}
}

func TestSubprocessCachesFailures(t *testing.T) {
	bin := jvmsimBinary(t)
	p, _ := workload.ByName("h2")
	sub := NewSubprocess(bin, p)
	first := sub.Measure(crashConfig(), 2)
	if !first.Failed {
		t.Fatalf("expected failure, got %+v", first)
	}
	elapsed := sub.Elapsed()
	second := sub.Measure(crashConfig(), 2)
	if !second.FromCache || second.CostSeconds != 0 || sub.Elapsed() != elapsed {
		t.Errorf("subprocess runner must cache failures at zero cost: %+v", second)
	}
}

func TestMultiCachesFailures(t *testing.T) {
	m := newMulti(t, "startup.scimark.monte_carlo", "h2")
	first := m.Measure(crashConfig(), 1)
	if !first.Failed {
		t.Fatalf("expected the aggregate to fail, got %+v", first)
	}
	elapsed := m.Elapsed()
	second := m.Measure(crashConfig(), 1)
	if !second.FromCache || second.CostSeconds != 0 || m.Elapsed() != elapsed {
		t.Errorf("multi runner must cache failures at zero cost: %+v", second)
	}
	if !second.Failed {
		t.Error("cached replay must preserve the aggregate failure")
	}
}
