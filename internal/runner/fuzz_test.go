package runner

import (
	"encoding/json"
	"testing"
)

// FuzzRunReportDecode hardens the subprocess wire format: any bytes that
// decode into a RunReport must re-encode and decode to the same value —
// the scraper never invents or loses fields on valid input, and invalid
// input fails cleanly instead of panicking. The seed corpus in testdata/fuzz
// replays on every normal `go test` run.
func FuzzRunReportDecode(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`{"benchmark":"fop","rep":2,"wall_seconds":3.25}`,
		`{"benchmark":"h2","failed":true,"failure":"oom","failure_message":"OutOfMemoryError: heap"}`,
		`{"benchmark":"avrora","wall_seconds":1.5,"collector":"g1","gc_stop_seconds":0.12,"max_pause_seconds":0.03,"minor_gcs":14,"full_gcs":1}`,
		`{"benchmark":"фоп","wall_seconds":-1e308}`,
		`{"rep":-1,"wall_seconds":0.0000001}`,
		`{"benchmark":"x","unknown_field":[1,2,{"a":null}]}`,
		`[1,2,3]`,
		`{"wall_seconds":"not a number"}`,
		`{"benchmark":`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var report RunReport
		if err := json.Unmarshal(data, &report); err != nil {
			// Corrupt input must be rejected, not crash — which is exactly
			// what the subprocess runner's corrupt-report path relies on.
			t.Skip()
		}
		out, err := json.Marshal(report)
		if err != nil {
			// Fuzzed JSON can smuggle values Go decodes but cannot re-encode
			// (NaN/Inf are not among them, but be explicit about the
			// invariant: a decoded report is always re-encodable).
			t.Fatalf("decoded report does not re-encode: %v (%+v)", err, report)
		}
		var back RunReport
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("re-encoded report does not decode: %v (%s)", err, out)
		}
		if back != report {
			t.Fatalf("report round trip changed values:\n  %+v\n  %+v", report, back)
		}
	})
}
