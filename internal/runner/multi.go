package runner

import (
	"fmt"
	"sync"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Multi measures one configuration against a *set* of workloads and scores
// it by the mean normalized wall time (each program's wall divided by its
// default-configuration wall). Minimizing that mean finds a single "common"
// configuration for the whole suite — the deployment-relevant variant of
// the paper's per-program tuning, where one JVM setup must serve every
// service on a box.
//
// A configuration that fails on any member workload fails outright: a
// common config must run everywhere. Costs accumulate across members, so a
// 200-minute budget buys proportionally fewer trials than per-program
// tuning — exactly the trade-off the experiment measures.
type Multi struct {
	sim      *jvmsim.Simulator
	profiles []*workload.Profile
	baseline []float64 // default walls, the normalization denominators
	pseudo   *workload.Profile

	// TimeoutSeconds per member run; defaults to 6× that member's baseline.
	timeouts []float64

	// Retry bounds re-attempts of transient failures; the zero value means
	// the defaults (see RetryPolicy). Set before the first Measure call.
	Retry RetryPolicy
	// Telemetry and Trace optionally receive runner metrics and per-attempt
	// trace events; see telemetry.go.
	Telemetry *telemetry.Registry
	Trace     *telemetry.Tracer

	mu      sync.Mutex
	elapsed VirtualClock
	reps    map[string]int
	cache   map[string]Measurement
}

// NewMulti builds a multi-workload runner over the given profiles.
func NewMulti(sim *jvmsim.Simulator, profiles []*workload.Profile) (*Multi, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("runner: Multi needs at least one workload")
	}
	m := &Multi{
		sim:      sim,
		profiles: profiles,
		reps:     make(map[string]int),
		cache:    make(map[string]Measurement),
	}
	reg := flags.NewRegistry()
	def := flags.NewConfig(reg)
	name := "suite:"
	for i, p := range profiles {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		res := sim.Run(def, p, 0)
		if res.Failed {
			return nil, fmt.Errorf("runner: %s fails under defaults: %s", p.Name, res.FailureMessage)
		}
		m.baseline = append(m.baseline, res.WallSeconds)
		m.timeouts = append(m.timeouts, 6*res.WallSeconds)
		if i > 0 {
			name += "+"
		}
		name += p.Name
	}
	// The pseudo-profile identifies the aggregate in session outputs. It
	// borrows the first member's shape so it validates. Clone guarantees
	// independence: renaming the aggregate (or any future mutation) can
	// never corrupt the first member workload.
	pseudo := profiles[0].Clone()
	pseudo.Name = name
	pseudo.Suite = "multi"
	m.pseudo = pseudo
	return m, nil
}

// Workload returns a pseudo-profile naming the aggregate.
func (m *Multi) Workload() *workload.Profile { return m.pseudo }

// Elapsed returns total virtual seconds consumed.
func (m *Multi) Elapsed() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.elapsed.Seconds()
}

// MemberWalls measures cfg once per member and returns the raw walls —
// used by reports to show the common config's per-program cost. Failures
// yield negative entries.
func (m *Multi) MemberWalls(cfg *flags.Config, reps int) []float64 {
	out := make([]float64, len(m.profiles))
	for i, p := range m.profiles {
		sum, n := 0.0, 0
		for rep := 0; rep < reps; rep++ {
			res := m.sim.Run(cfg, p, rep)
			if res.Failed {
				n = 0
				break
			}
			sum += res.WallSeconds
			n++
		}
		if n == 0 {
			out[i] = -1
			continue
		}
		out[i] = sum / float64(n)
	}
	return out
}

// Baselines returns each member's default-configuration wall time.
func (m *Multi) Baselines() []float64 {
	return append([]float64(nil), m.baseline...)
}

// Measure implements Runner. Mean is the mean *normalized* wall across
// members (1.0 ≡ default performance), so Session improvement percentages
// read as suite-average improvements.
func (m *Multi) Measure(cfg *flags.Config, reps int) Measurement {
	if reps < 1 {
		reps = 1
	}
	key := cfg.Key()

	m.mu.Lock()
	// Failed measurements replay from the cache too; see InProcess.Measure.
	if cached, ok := m.cache[key]; ok && (cached.Failed || len(cached.Walls) >= reps) {
		m.mu.Unlock()
		cached.FromCache = true
		cached.CostSeconds = 0
		NoteCacheHit(m.Telemetry, m.Trace, key)
		return cached
	}
	m.mu.Unlock()

	out := m.Retry.Run(func(n int) Measurement {
		m.mu.Lock()
		repBase := m.reps[key]
		m.reps[key] = repBase + reps
		m.mu.Unlock()

		out := Measurement{Key: key}
		for rep := 0; rep < reps && !out.Failed; rep++ {
			normSum := 0.0
			for i, p := range m.profiles {
				res := m.sim.Run(cfg, p, repBase+rep)
				cost := res.WallSeconds + LaunchOverheadSeconds
				if !res.Failed && res.WallSeconds > m.timeouts[i] {
					res.Failed = true
					res.Failure = TimeoutFailure
					res.FailureMessage = fmt.Sprintf("%s killed after %.0fs", p.Name, m.timeouts[i])
					cost = m.timeouts[i] + LaunchOverheadSeconds
				}
				out.CostSeconds += cost
				if res.Failed {
					out.Failed = true
					out.Failure = res.Failure
					out.FailureMessage = fmt.Sprintf("%s: %s", p.Name, res.FailureMessage)
					break
				}
				normSum += res.WallSeconds / m.baseline[i]
			}
			if !out.Failed {
				out.Walls = append(out.Walls, normSum/float64(len(m.profiles)))
			}
		}
		if len(out.Walls) > 0 && !out.Failed {
			sum := 0.0
			for _, w := range out.Walls {
				sum += w
			}
			out.Mean = sum / float64(len(out.Walls))
		}
		NoteAttempt(m.Telemetry, m.Trace, key, n, n > 0, out)
		return out
	})
	NoteMeasured(m.Telemetry, m.Trace, key, out)

	m.mu.Lock()
	m.elapsed.Charge(out.CostSeconds)
	// Transient failures are not verdicts; see InProcess.Measure.
	if !out.Transient {
		m.cache[key] = out
	}
	m.mu.Unlock()
	return out
}
