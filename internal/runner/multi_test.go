package runner

import (
	"strings"
	"testing"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/workload"
)

func newMulti(t *testing.T, names ...string) *Multi {
	t.Helper()
	sim := jvmsim.New()
	sim.NoiseRelStdDev = 0
	var ps []*workload.Profile
	for _, n := range names {
		p, ok := workload.ByName(n)
		if !ok {
			t.Fatalf("no workload %s", n)
		}
		ps = append(ps, p)
	}
	m, err := NewMulti(sim, ps)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMultiDefaultScoresOne(t *testing.T) {
	m := newMulti(t, "fop", "xalan", "h2")
	def := flags.NewConfig(flags.NewRegistry())
	meas := m.Measure(def, 1)
	if meas.Failed {
		t.Fatalf("defaults failed: %+v", meas)
	}
	// Normalized score of the default configuration is exactly 1.
	if meas.Mean < 0.999 || meas.Mean > 1.001 {
		t.Errorf("default normalized score %.4f, want 1.0", meas.Mean)
	}
	if meas.CostSeconds <= 0 {
		t.Error("no cost accounted")
	}
}

func TestMultiGoodCommonConfigScoresBelowOne(t *testing.T) {
	m := newMulti(t, "startup.compiler.compiler", "h2")
	cfg := flags.NewConfig(flags.NewRegistry())
	cfg.SetBool("TieredCompilation", true)
	cfg.SetInt("MaxHeapSize", 2<<30)
	meas := m.Measure(cfg, 1)
	if meas.Failed {
		t.Fatalf("run failed: %+v", meas)
	}
	if meas.Mean >= 1 {
		t.Errorf("a good common config should score < 1, got %.3f", meas.Mean)
	}
}

func TestMultiFailsIfAnyMemberFails(t *testing.T) {
	m := newMulti(t, "startup.scimark.monte_carlo", "h2") // h2 needs 238 MB live
	small := flags.NewConfig(flags.NewRegistry())
	small.SetInt("MaxHeapSize", 128<<20)
	small.SetInt("InitialHeapSize", 64<<20) // the kernel survives; h2 OOMs
	meas := m.Measure(small, 1)
	if !meas.Failed {
		t.Fatal("a config that OOMs one member must fail the aggregate")
	}
	if !strings.Contains(meas.FailureMessage, "h2") {
		t.Errorf("failure should name the member: %s", meas.FailureMessage)
	}
}

func TestMultiCostSumsMembers(t *testing.T) {
	single := newMulti(t, "fop")
	double := newMulti(t, "fop", "fop")
	def := flags.NewConfig(flags.NewRegistry())
	c1 := single.Measure(def, 1).CostSeconds
	c2 := double.Measure(def, 1).CostSeconds
	if c2 < c1*1.8 {
		t.Errorf("two members should cost about twice as much: %.1f vs %.1f", c2, c1)
	}
}

func TestMultiCache(t *testing.T) {
	m := newMulti(t, "fop", "xalan")
	cfg := flags.NewConfig(flags.NewRegistry())
	cfg.SetInt("NewRatio", 4)
	m.Measure(cfg, 2)
	second := m.Measure(cfg, 2)
	if !second.FromCache || second.CostSeconds != 0 {
		t.Error("repeat measurement should replay from cache at zero cost")
	}
}

func TestMultiPseudoWorkloadAndBaselines(t *testing.T) {
	m := newMulti(t, "fop", "xalan")
	w := m.Workload()
	if w.Suite != "multi" || !strings.Contains(w.Name, "fop") || !strings.Contains(w.Name, "xalan") {
		t.Errorf("pseudo workload: %+v", w.Name)
	}
	bs := m.Baselines()
	if len(bs) != 2 || bs[0] <= 0 || bs[1] <= 0 {
		t.Errorf("baselines: %v", bs)
	}
}

func TestMultiMemberWalls(t *testing.T) {
	m := newMulti(t, "startup.scimark.monte_carlo", "h2")
	good := flags.NewConfig(flags.NewRegistry())
	walls := m.MemberWalls(good, 1)
	if len(walls) != 2 || walls[0] <= 0 || walls[1] <= 0 {
		t.Errorf("member walls: %v", walls)
	}
	bad := flags.NewConfig(flags.NewRegistry())
	bad.SetInt("MaxHeapSize", 128<<20)
	bad.SetInt("InitialHeapSize", 64<<20)
	walls = m.MemberWalls(bad, 1)
	if walls[1] >= 0 {
		t.Error("failing member should report a negative wall")
	}
}

func TestMultiRejectsBadConstruction(t *testing.T) {
	sim := jvmsim.New()
	if _, err := NewMulti(sim, nil); err == nil {
		t.Error("empty profile list should error")
	}
	bad := &workload.Profile{Name: "bad"}
	if _, err := NewMulti(sim, []*workload.Profile{bad}); err == nil {
		t.Error("invalid profile should error")
	}
}

func TestMultiDrivesASession(t *testing.T) {
	// End to end: common-config tuning over two GC-sensitive programs.
	sim := jvmsim.New()
	p1, _ := workload.ByName("h2")
	p2, _ := workload.ByName("tradebeans")
	m, err := NewMulti(sim, []*workload.Profile{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	// Import cycle prevents using core here; drive the runner directly
	// with a tiny random search instead.
	reg := flags.NewRegistry()
	best := flags.NewConfig(reg)
	bestScore := m.Measure(best, 1).Mean
	candidates := []*flags.Config{}
	big := flags.NewConfig(reg)
	big.SetInt("MaxHeapSize", 4<<30)
	big.SetInt("InitialHeapSize", 4<<30)
	candidates = append(candidates, big)
	tiered := big.Clone()
	tiered.SetBool("TieredCompilation", true)
	candidates = append(candidates, tiered)
	for _, c := range candidates {
		if meas := m.Measure(c, 1); !meas.Failed && meas.Mean < bestScore {
			best, bestScore = c, meas.Mean
		}
	}
	if bestScore >= 1 {
		t.Errorf("no common config beat the defaults: %.3f", bestScore)
	}
}
