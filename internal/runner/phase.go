package runner

import (
	"fmt"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/workload"
)

// PhaseSetter is the contract between runners and phase-shifting workloads
// (drift sessions; see internal/jvmsim.PhaseSchedule). The session calls
// SetPhase between rounds — rounds are barriers, so no measurement is ever
// in flight across a phase switch — and subsequent measurements run against
// the shifted profile.
//
// Phase bookkeeping is internal: measurement keys, traces, and telemetry
// stay keyed by the configuration alone, while the runner's rep indices and
// cache become per-(phase, config) so a configuration measured before a
// shift is genuinely re-measured after it (the pre-drift verdict is stale
// evidence, not a cache hit). Phase 0 uses the unprefixed keys, so a runner
// that never leaves phase 0 is byte-identical — cache, snapshots, elapsed —
// to one that has no phase support at all.
//
// Wrapping runners (the chaos layer) forward SetPhase to their inner runner
// and scope their own per-key state the same way.
type PhaseSetter interface {
	// SetPhase switches subsequent measurements to the given phase: shift
	// applied to the base profile. Phase 0 with the identity shift restores
	// the base. It fails closed on a shift that does not produce a valid
	// profile.
	SetPhase(phase int, shift jvmsim.PhaseShift) error
}

// PhaseKey scopes a per-config state key to a phase — the shared
// convention for every phase-aware runner's internal maps (and therefore
// its serialized state), so a checkpoint taken under any of them restores
// under the same rules. Phase 0 is the bare key: pre-drift state (and
// pre-drift checkpoints) stay byte-compatible with runners that know
// nothing about phases.
func PhaseKey(phase int, key string) string {
	if phase == 0 {
		return key
	}
	return fmt.Sprintf("ph%d|%s", phase, key)
}

// PhaseTimeout rescales a harness kill threshold for a shifted profile by
// the ratio of default-configuration wall times. The timeout models the
// operator's kill threshold, calibrated against the workload's baseline
// (runners default it to 6× the default config's wall); after a drift that
// baseline moved, and a threshold still calibrated to the old regime would
// kill every honest run of the new one — starving the session of the very
// measurements a re-tune needs. Pure in (sim, profiles), so every
// phase-aware runner derives the identical threshold. A zero (disabled)
// base timeout stays disabled.
func PhaseTimeout(baseTimeout float64, sim *jvmsim.Simulator, base, eff *workload.Profile) float64 {
	if baseTimeout <= 0 || eff == base {
		return baseTimeout
	}
	reg := flags.NewRegistry()
	bw := sim.DefaultWall(reg, base, 1)
	if bw <= 0 {
		return baseTimeout
	}
	return baseTimeout * sim.DefaultWall(reg, eff, 1) / bw
}

// SetPhase implements PhaseSetter.
func (r *InProcess) SetPhase(phase int, shift jvmsim.PhaseShift) error {
	eff, err := shift.Apply(r.profile)
	if err != nil {
		return err
	}
	if phase == 0 {
		eff = r.profile
	}
	r.mu.Lock()
	if !r.timeout0Set {
		r.timeout0, r.timeout0Set = r.TimeoutSeconds, true
	}
	r.phase, r.phased = phase, eff
	r.TimeoutSeconds = PhaseTimeout(r.timeout0, r.sim, r.profile, eff)
	r.mu.Unlock()
	return nil
}

// currentPhase returns the phase and effective profile under the lock-free
// assumption that phases only change between rounds (the PhaseSetter
// contract): a Measure call never races a SetPhase.
func (r *InProcess) currentPhase() (int, *workload.Profile) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.phased == nil {
		return r.phase, r.profile
	}
	return r.phase, r.phased
}
