package runner

import (
	"strings"
	"testing"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/workload"
)

func TestPhaseKey(t *testing.T) {
	// Phase 0 is the bare key: pre-drift state stays byte-compatible with
	// runners that know nothing about phases.
	if got := PhaseKey(0, "MaxHeapSize=512m"); got != "MaxHeapSize=512m" {
		t.Errorf("phase 0 key = %q, want bare key", got)
	}
	if got := PhaseKey(2, "MaxHeapSize=512m"); got != "ph2|MaxHeapSize=512m" {
		t.Errorf("phase 2 key = %q", got)
	}
	if got := PhaseKey(1, ""); got != "ph1|" {
		t.Errorf("phase 1 empty key = %q", got)
	}
}

func TestPhaseTimeout(t *testing.T) {
	p, _ := workload.ByName("fop")
	sim := jvmsim.New()
	eff, err := jvmsim.DefaultShift().Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	// A disabled threshold stays disabled; an unshifted profile keeps the
	// calibrated one.
	if got := PhaseTimeout(0, sim, p, eff); got != 0 {
		t.Errorf("disabled timeout rescaled to %g", got)
	}
	if got := PhaseTimeout(100, sim, p, p); got != 100 {
		t.Errorf("identity phase rescaled timeout to %g", got)
	}
	// The default surge makes the default config slower, so the kill
	// threshold must grow by the same ratio.
	got := PhaseTimeout(100, sim, p, eff)
	reg := flags.NewRegistry()
	want := 100 * sim.DefaultWall(reg, eff, 1) / sim.DefaultWall(reg, p, 1)
	if got <= 100 || got != want {
		t.Errorf("shifted timeout = %g, want %g (> 100)", got, want)
	}
}

func TestInProcessSetPhase(t *testing.T) {
	r, reg := newRunner(t, "fop")
	base := r.TimeoutSeconds
	cfg := flags.NewConfig(reg)
	m0 := r.Measure(cfg, 1)

	// An invalid shift fails closed and changes nothing.
	if err := r.SetPhase(1, jvmsim.PhaseShift{AllocFactor: -3}); err == nil {
		t.Fatal("negative shift factor accepted")
	}
	if r.TimeoutSeconds != base {
		t.Error("failed SetPhase must not touch the timeout")
	}

	if err := r.SetPhase(1, jvmsim.DefaultShift()); err != nil {
		t.Fatal(err)
	}
	// The shifted regime is slower, the kill threshold recalibrates, and a
	// config measured pre-shift is genuinely re-measured, not cache-hit.
	if r.TimeoutSeconds <= base {
		t.Errorf("timeout %g not rescaled above base %g", r.TimeoutSeconds, base)
	}
	m1 := r.Measure(cfg, 1)
	if m1.FromCache {
		t.Error("pre-shift measurement served as a post-shift cache hit")
	}
	if m1.Mean <= m0.Mean {
		t.Errorf("surge wall %g not above base wall %g", m1.Mean, m0.Mean)
	}

	// Phase 0 with the identity restores the base profile and threshold.
	if err := r.SetPhase(0, jvmsim.PhaseShift{}); err != nil {
		t.Fatal(err)
	}
	if r.TimeoutSeconds != base {
		t.Errorf("phase 0 timeout = %g, want %g", r.TimeoutSeconds, base)
	}
	back := r.Measure(cfg, 1)
	if !back.FromCache || back.Mean != m0.Mean {
		t.Error("phase 0 should replay the phase-0 cache")
	}
}

func TestWorkloadAccessors(t *testing.T) {
	p, _ := workload.ByName("fop")
	if got := NewInProcess(jvmsim.New(), p).Workload(); got != p {
		t.Error("InProcess.Workload mismatch")
	}
	if got := NewSubprocess("/bin/false", p).Workload(); got != p {
		t.Error("Subprocess.Workload mismatch")
	}
}

func TestRunnerStateRoundTrip(t *testing.T) {
	r, reg := newRunner(t, "fop")
	cfg := flags.NewConfig(reg)
	cfg.SetInt("MaxHeapSize", 1<<30)
	m := r.Measure(cfg, 2)
	snap, err := r.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}

	// A fresh runner restored from the snapshot replays the measurement
	// from cache at zero cost, with the clock carried over exactly.
	r2, _ := newRunner(t, "fop")
	if err := r2.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	if r2.Elapsed() != r.Elapsed() {
		t.Errorf("restored clock %g != %g", r2.Elapsed(), r.Elapsed())
	}
	hit := r2.Measure(cfg.Clone(), 2)
	if !hit.FromCache || hit.Mean != m.Mean {
		t.Error("restored runner should replay the cached measurement")
	}

	// The exported pair is byte-compatible with the core runners' format.
	elapsed, reps, cache, err := UnmarshalState(snap)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != r.Elapsed() || len(reps) == 0 || len(cache) == 0 {
		t.Error("UnmarshalState lost state")
	}
	out, err := MarshalState(elapsed, reps, cache)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(snap) {
		t.Error("MarshalState not byte-identical to SnapshotState")
	}

	// Fail closed on garbage; empty maps come back non-nil.
	if err := r2.RestoreState([]byte("garbage")); err == nil || !strings.Contains(err.Error(), "restore state") {
		t.Errorf("garbage restore err = %v", err)
	}
	if _, reps, cache, err := UnmarshalState([]byte("{}")); err != nil || reps == nil || cache == nil {
		t.Error("empty state must restore non-nil maps")
	}
}

func TestSubprocessAndMultiStateRoundTrip(t *testing.T) {
	p, _ := workload.ByName("fop")
	sp := NewSubprocess("/bin/false", p)
	snap, err := sp.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if err := NewSubprocess("/bin/false", p).RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	if err := sp.RestoreState([]byte("{")); err == nil {
		t.Error("Subprocess garbage restore accepted")
	}

	m, err := NewMulti(jvmsim.New(), []*workload.Profile{p})
	if err != nil {
		t.Fatal(err)
	}
	snap, err = m.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreState([]byte("{")); err == nil {
		t.Error("Multi garbage restore accepted")
	}
}
