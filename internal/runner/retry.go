package runner

import (
	"math"

	"repro/internal/jvmsim"
)

// The resilient measurement pipeline distinguishes two classes of failure.
// Transient failures are harness accidents — a launch that never started, a
// report that arrived corrupted, a fault the chaos layer injected — and are
// worth retrying: the configuration itself may be perfectly fine.
// Deterministic failures (OOM, bad flag combinations, timeouts) condemn the
// configuration: re-running would reproduce them, so they are cached and
// replayed at zero cost instead.
const (
	// LaunchFlakeFailure marks a launch that produced neither a run nor a
	// report: the process could not start or died without output. A real
	// farm sees these when a node is sick, not when a config is bad.
	LaunchFlakeFailure jvmsim.FailureKind = "launch-error"
	// CorruptReportFailure marks a run whose report could not be parsed —
	// truncated or garbled output scraping.
	CorruptReportFailure jvmsim.FailureKind = "corrupt-report"
	// InjectedCrashFailure marks a spurious crash injected by the chaos
	// layer (internal/faultinject) partway through a run.
	InjectedCrashFailure jvmsim.FailureKind = "injected-crash"
	// InjectedHangFailure marks an injected hang that the harness killed at
	// its real-time deadline.
	InjectedHangFailure jvmsim.FailureKind = "injected-hang"
	// NodeDownFailure marks a trial that could not be placed on any live
	// evaluator node: the whole fleet was dead or quarantined when the
	// dispatch layer (internal/dispatch) gave up re-dispatching. The
	// configuration itself is not condemned — a node death says nothing
	// about the flags — so the kind is transient and never cached.
	NodeDownFailure jvmsim.FailureKind = "node-down"
	// NodeRejectedFailure marks a trial an evaluator node refused with a
	// 400-class protocol rejection (unknown flag, key mismatch, bogus
	// payload). The rejection is deterministic — every node would answer
	// the same — so it condemns the configuration like a local validation
	// failure would.
	NodeRejectedFailure jvmsim.FailureKind = "node-rejected"
)

// Transient reports whether kind names a failure worth retrying. Everything
// else — VM startup rejections, OOMs, stack overflows, timeouts — is
// deterministic: the configuration is condemned and the verdict cached.
func Transient(kind jvmsim.FailureKind) bool {
	switch kind {
	case LaunchFlakeFailure, CorruptReportFailure, InjectedCrashFailure, InjectedHangFailure, NodeDownFailure:
		return true
	}
	return false
}

// RetryPolicy bounds how a runner re-attempts transiently failed
// measurements. Every attempt is charged to the virtual budget, and each
// retry additionally charges an exponentially growing backoff — the virtual
// cost of waiting out whatever upset the farm — so flaky infrastructure
// costs tuning time exactly as it would in the paper's wall-clock economy.
//
// The zero value means the defaults; see each field.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per measurement,
	// including the first. Values below 1 mean the default, 3.
	MaxAttempts int
	// BackoffSeconds is the virtual charge before the first retry. Zero
	// means the default, 2 seconds; negative disables backoff charges.
	BackoffSeconds float64
	// BackoffFactor multiplies the backoff on each further retry. Values
	// below 1 mean the default, 2.
	BackoffFactor float64
}

// DefaultRetryPolicy returns the defaults: 3 attempts, 2s backoff, doubling.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BackoffSeconds: 2, BackoffFactor: 2}
}

// Normalized resolves the zero-value defaults.
func (p RetryPolicy) Normalized() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts < 1 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BackoffSeconds == 0 {
		p.BackoffSeconds = d.BackoffSeconds
	} else if p.BackoffSeconds < 0 {
		p.BackoffSeconds = 0
	}
	if p.BackoffFactor < 1 {
		p.BackoffFactor = d.BackoffFactor
	}
	return p
}

// Backoff returns the virtual-seconds charge before retry n (0-based): the
// first retry costs BackoffSeconds, each further one BackoffFactor× more.
func (p RetryPolicy) Backoff(retry int) float64 {
	p = p.Normalized()
	return p.BackoffSeconds * math.Pow(p.BackoffFactor, float64(retry))
}

// Run drives the attempt loop shared by every runner and the chaos layer:
// attempt(n) performs measurement attempt n and Run retries it while the
// outcome is a transient failure and the policy allows. Costs, attempt
// counts, and flake counts accumulate across attempts into the returned
// measurement; the final attempt supplies everything else. A measurement
// that is still failing transiently when the budget runs out is marked
// Transient so callers know not to condemn (cache) the configuration.
func (p RetryPolicy) Run(attempt func(n int) Measurement) Measurement {
	p = p.Normalized()
	cost, attempts, flakes := 0.0, 0, 0
	for n := 0; ; n++ {
		m := attempt(n)
		cost += m.CostSeconds
		if m.Attempts > 0 {
			attempts += m.Attempts
		} else {
			attempts++
		}
		flakes += m.Flakes
		if m.Failed && Transient(m.Failure) && n+1 < p.MaxAttempts {
			flakes++
			// p is already normalized; going through Backoff again would
			// turn an explicit "no backoff" (0 after normalization) back
			// into the default.
			cost += p.BackoffSeconds * math.Pow(p.BackoffFactor, float64(n))
			continue
		}
		m.CostSeconds = cost
		m.Attempts = attempts
		m.Flakes = flakes
		m.Transient = m.Failed && Transient(m.Failure)
		return m
	}
}
