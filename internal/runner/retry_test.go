package runner

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/workload"
)

func TestTransientClassification(t *testing.T) {
	for _, kind := range []jvmsim.FailureKind{
		LaunchFlakeFailure, CorruptReportFailure, InjectedCrashFailure, InjectedHangFailure,
	} {
		if !Transient(kind) {
			t.Errorf("%s should be transient", kind)
		}
	}
	for _, kind := range []jvmsim.FailureKind{
		jvmsim.StartupFailure, jvmsim.OOMFailure, jvmsim.StackOverflowFailure,
		TimeoutFailure, jvmsim.NoFailure,
	} {
		if Transient(kind) {
			t.Errorf("%s should be deterministic", kind)
		}
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{BackoffSeconds: 3, BackoffFactor: 2}
	for i, want := range []float64{3, 6, 12} {
		if got := p.Backoff(i); math.Abs(got-want) > 1e-9 {
			t.Errorf("Backoff(%d) = %g, want %g", i, got, want)
		}
	}
	// Negative disables the charge; zero factor falls back to the default.
	if got := (RetryPolicy{BackoffSeconds: -1}).Backoff(0); got != 0 {
		t.Errorf("negative backoff should charge nothing, got %g", got)
	}
	if got := DefaultRetryPolicy().Backoff(1); got != 4 {
		t.Errorf("default second backoff = %g, want 4", got)
	}
}

func TestRetryPolicyRunAbsorbsTransientFailures(t *testing.T) {
	calls := 0
	m := RetryPolicy{MaxAttempts: 3, BackoffSeconds: 2, BackoffFactor: 2}.Run(func(n int) Measurement {
		calls++
		if n < 2 {
			return Measurement{Failed: true, Failure: LaunchFlakeFailure, CostSeconds: 0.5}
		}
		return Measurement{Walls: []float64{1.0}, Mean: 1.0, CostSeconds: 1.5}
	})
	if calls != 3 {
		t.Fatalf("expected 3 attempts, got %d", calls)
	}
	if m.Failed {
		t.Fatalf("final measurement should succeed: %+v", m)
	}
	if m.Attempts != 3 || m.Flakes != 2 || m.Transient {
		t.Errorf("attempt accounting wrong: %+v", m)
	}
	// 2 failed attempts + backoffs (2s then 4s) + the successful run.
	want := 0.5 + 2 + 0.5 + 4 + 1.5
	if math.Abs(m.CostSeconds-want) > 1e-9 {
		t.Errorf("cost = %g, want %g", m.CostSeconds, want)
	}
}

func TestRetryPolicyRunStopsOnDeterministicFailure(t *testing.T) {
	calls := 0
	m := RetryPolicy{MaxAttempts: 5}.Run(func(int) Measurement {
		calls++
		return Measurement{Failed: true, Failure: jvmsim.OOMFailure, CostSeconds: 1}
	})
	if calls != 1 {
		t.Errorf("deterministic failures must not be retried (got %d attempts)", calls)
	}
	if m.Transient || !m.Failed || m.Attempts != 1 || m.Flakes != 0 {
		t.Errorf("unexpected measurement: %+v", m)
	}
}

func TestRetryPolicyRunExhaustsAsTransient(t *testing.T) {
	m := RetryPolicy{MaxAttempts: 2, BackoffSeconds: -1}.Run(func(int) Measurement {
		return Measurement{Failed: true, Failure: CorruptReportFailure, CostSeconds: 0.5}
	})
	if !m.Failed || !m.Transient {
		t.Fatalf("exhausted retries must surface a transient failure: %+v", m)
	}
	if m.Attempts != 2 || m.Flakes != 1 || m.CostSeconds != 1.0 {
		t.Errorf("accounting wrong: %+v", m)
	}
}

// Regression (ISSUE 2): a RealTimeout kill used to be classified as a
// StartupFailure and charge only the launch overhead — a hung config cost
// almost nothing. It must be a TimeoutFailure charging the harness timeout.
func TestSubprocessRealTimeoutChargedAsTimeout(t *testing.T) {
	bin := jvmsimBinary(t)
	p, _ := workload.ByName("fop")
	sub := NewSubprocess(bin, p)
	sub.RealTimeout = time.Nanosecond // expires before the launch starts
	sub.TimeoutSeconds = 42

	m := sub.Measure(flags.NewConfig(flags.NewRegistry()), 1)
	if !m.Failed || m.Failure != TimeoutFailure {
		t.Fatalf("real-timeout kill must be a TimeoutFailure, got %+v", m)
	}
	want := 42 + LaunchOverheadSeconds
	if math.Abs(m.CostSeconds-want) > 1e-9 {
		t.Errorf("cost = %g, want %g (the harness timeout, not the launch overhead)", m.CostSeconds, want)
	}
	// Timeouts are deterministic: the verdict is cached and condemns.
	if n := sub.Elapsed(); math.Abs(n-m.CostSeconds) > 1e-6 {
		t.Errorf("elapsed = %g, want %g", n, m.CostSeconds)
	}
	if again := sub.Measure(flags.NewConfig(flags.NewRegistry()), 1); !again.FromCache {
		t.Error("a timed-out config must stay condemned-and-cached")
	}
}

// fakeLauncher writes an executable shell script standing in for jvmsim.
func fakeLauncher(t *testing.T, script string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fakesim")
	if err := os.WriteFile(path, []byte("#!/bin/sh\n"+script+"\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSubprocessRetriesCorruptReports(t *testing.T) {
	p, _ := workload.ByName("fop")
	// A launcher that always truncates its report mid-JSON.
	sub := NewSubprocess(fakeLauncher(t, `printf '{"benchmark":"fop","wall_se'`), p)
	sub.Retry = RetryPolicy{MaxAttempts: 3, BackoffSeconds: 2, BackoffFactor: 2}

	cfg := flags.NewConfig(flags.NewRegistry())
	m := sub.Measure(cfg, 1)
	if !m.Failed || m.Failure != CorruptReportFailure {
		t.Fatalf("expected a corrupt-report failure, got %+v", m)
	}
	if m.Attempts != 3 || m.Flakes != 2 || !m.Transient {
		t.Errorf("corrupt reports must be retried to exhaustion: %+v", m)
	}
	// 3 wasted launches plus 2s+4s of backoff.
	want := 3*LaunchOverheadSeconds + 6
	if math.Abs(m.CostSeconds-want) > 1e-9 {
		t.Errorf("cost = %g, want %g", m.CostSeconds, want)
	}
	// Transient exhaustion is not a verdict: a re-proposal attempts again
	// rather than replaying a condemnation from the cache.
	before := sub.Elapsed()
	if again := sub.Measure(cfg, 1); again.FromCache {
		t.Error("transient failures must not be cached as condemnations")
	}
	if sub.Elapsed() == before {
		t.Error("the re-attempt should have consumed budget")
	}
}

func TestSubprocessRetriesLaunchFlakes(t *testing.T) {
	p, _ := workload.ByName("fop")
	// A launcher that dies without producing any report.
	sub := NewSubprocess(fakeLauncher(t, "exit 3"), p)
	sub.Retry = RetryPolicy{MaxAttempts: 2, BackoffSeconds: -1}
	m := sub.Measure(flags.NewConfig(flags.NewRegistry()), 1)
	if !m.Failed || m.Failure != LaunchFlakeFailure {
		t.Fatalf("expected a launch flake, got %+v", m)
	}
	if m.Attempts != 2 || m.Flakes != 1 || !m.Transient {
		t.Errorf("launch flakes must be retried: %+v", m)
	}
}

// A launcher that flakes on its first call and succeeds afterwards must
// yield a successful measurement with the flake charged.
func TestSubprocessRecoversAfterFlake(t *testing.T) {
	real := jvmsimBinary(t)
	p, _ := workload.ByName("fop")
	marker := filepath.Join(t.TempDir(), "flaked")
	script := `if [ ! -f ` + marker + ` ]; then touch ` + marker + `; exit 9; fi
exec ` + real + ` "$@"`
	sub := NewSubprocess(fakeLauncher(t, script), p)
	sub.Retry = RetryPolicy{MaxAttempts: 3, BackoffSeconds: 2, BackoffFactor: 2}

	m := sub.Measure(flags.NewConfig(flags.NewRegistry()), 1)
	if m.Failed {
		t.Fatalf("measurement should recover from a single flake: %+v", m)
	}
	if m.Flakes != 1 || m.Attempts != 2 || m.Transient {
		t.Errorf("flake accounting wrong: %+v", m)
	}
	want := LaunchOverheadSeconds + 2 + m.Walls[0] + LaunchOverheadSeconds
	if math.Abs(m.CostSeconds-want) > 1e-9 {
		t.Errorf("cost = %g, want %g (flaked launch + backoff + real run)", m.CostSeconds, want)
	}
	// The recovered success is a definitive verdict and is cached.
	if again := sub.Measure(flags.NewConfig(flags.NewRegistry()), 1); !again.FromCache {
		t.Error("recovered measurements must be cached like any success")
	}
}
