// Package runner executes measurement trials for the tuner: it runs a flag
// configuration against one workload for a number of repetitions and
// reports the aggregate, while accounting every simulated second against a
// virtual clock. The paper's tuning sessions are wall-clock budgeted
// (200 minutes per program); the virtual clock reproduces that economy —
// slow configurations eat more budget, crashed ones eat little — while the
// whole experiment finishes in real milliseconds.
//
// Two runners are provided. InProcess calls the simulator directly and is
// what the experiments use. Subprocess launches the cmd/jvmsim binary with
// real -XX: command-line flags, exercising the same orchestration path the
// paper used against a real java launcher.
package runner

import (
	"fmt"
	"sync"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TimeoutFailure marks runs cut off by the harness timeout. It extends the
// simulator's failure kinds.
const TimeoutFailure jvmsim.FailureKind = "timeout"

// Measurement is the aggregate outcome of measuring one configuration.
type Measurement struct {
	// Key is the canonical configuration key the measurement belongs to.
	Key string
	// Walls are the per-repetition wall times of successful repetitions.
	Walls []float64
	// Mean is the mean of Walls; meaningless when Failed.
	Mean float64
	// Pauses are the per-repetition maximum GC pause times (seconds) of
	// successful repetitions; MeanPause is their mean. They feed the
	// pause-latency tuning objective.
	Pauses    []float64
	MeanPause float64
	// Failed reports that the configuration produced no usable measurement.
	Failed bool
	// Failure classifies the first failure encountered.
	Failure jvmsim.FailureKind
	// FailureMessage is the diagnostic of the first failure.
	FailureMessage string
	// CostSeconds is the virtual time the measurement consumed, including
	// every failed attempt and retry backoff.
	CostSeconds float64
	// HedgeCostSeconds, when > 0, is the virtual cost a clean duplicate run
	// of this measurement would have taken. The chaos layer sets it when a
	// straggle fault stalls the primary run; the session's straggler
	// watchdog (core.HedgePolicy) uses it to resolve first-result-wins
	// hedging in virtual time.
	HedgeCostSeconds float64 `json:",omitempty"`
	// FromCache reports the measurement was replayed from the cache at
	// zero cost.
	FromCache bool
	// Attempts is the number of measurement attempts behind this result
	// (at least 1 for a fresh measurement; retries add more).
	Attempts int
	// Flakes is the number of transient failures absorbed by retries on
	// the way to this result.
	Flakes int
	// Transient reports that Failure is a transient kind and the retry
	// budget ran out before a definitive verdict: the configuration is not
	// condemned, and runners do not cache the failure.
	Transient bool
}

// Runner measures configurations against one workload.
type Runner interface {
	// Measure runs reps repetitions of cfg and returns the aggregate.
	Measure(cfg *flags.Config, reps int) Measurement
	// Workload returns the profile being measured.
	Workload() *workload.Profile
	// Elapsed returns total virtual seconds consumed so far.
	Elapsed() float64
}

// BatchMeasurer is optionally implemented by runners that can measure a
// whole round of distinct configurations in one call (the dispatch pool's
// batched transport). The contract is strict equivalence: MeasureBatch
// must return exactly what reps-identical concurrent Measure calls would
// — same measurements, same virtual cost, same caching — so the executor
// may use either path for the same session without changing a byte of its
// outputs. Callers pass configurations with distinct keys.
type BatchMeasurer interface {
	MeasureBatch(cfgs []*flags.Config, reps int) []Measurement
}

// LaunchOverheadSeconds is harness overhead per repetition (process launch,
// result collection) beyond the JVM's own run time. It is also what a
// launch that never produced a run costs. Exported for the chaos layer
// (internal/faultinject), which synthesizes launch failures.
const LaunchOverheadSeconds = 0.5

// InProcess measures via direct calls into the simulator.
// It is safe for concurrent use.
type InProcess struct {
	sim     *jvmsim.Simulator
	profile *workload.Profile

	// TimeoutSeconds cuts off runs; configurations slower than this count
	// as failures but still consume the full timeout from the budget,
	// exactly like a real harness kill. Zero means no timeout.
	TimeoutSeconds float64
	// DisableCache turns off config-key memoization.
	DisableCache bool
	// Retry bounds re-attempts of transient failures; the zero value means
	// the defaults (see RetryPolicy). The simulator itself never fails
	// transiently, but a fault-injection layer beneath this runner can.
	Retry RetryPolicy
	// Telemetry optionally receives the runner metric series (see
	// telemetry.go); Trace optionally receives per-attempt trace events.
	// Both are nil-safe no-ops when unset. When a ChaosRunner wraps this
	// runner, wire telemetry to the chaos layer instead.
	Telemetry *telemetry.Registry
	Trace     *telemetry.Tracer

	mu      sync.Mutex
	elapsed VirtualClock
	reps    map[string]int // next noise-rep index per config
	cache   map[string]Measurement
	// phase and phased support phase-shifting workloads (see PhaseSetter):
	// phased is the effective profile measurements run against, nil until
	// the first SetPhase. Per-config state above is keyed through PhaseKey,
	// which is the identity in phase 0.
	phase  int
	phased *workload.Profile
	// timeout0 captures TimeoutSeconds at the first phase shift: phase
	// timeouts rescale from the base-profile threshold (see PhaseTimeout),
	// so repeated shifts never compound.
	timeout0    float64
	timeout0Set bool
}

// NewInProcess builds an in-process runner. The timeout defaults to 6× the
// default configuration's wall time, matching the paper's practice of
// killing configurations that are clearly hopeless.
func NewInProcess(sim *jvmsim.Simulator, p *workload.Profile) *InProcess {
	r := &InProcess{
		sim:     sim,
		profile: p,
		reps:    make(map[string]int),
		cache:   make(map[string]Measurement),
	}
	r.TimeoutSeconds = 6 * sim.DefaultWall(flags.NewRegistry(), p, 1)
	return r
}

// Workload returns the profile being measured.
func (r *InProcess) Workload() *workload.Profile { return r.profile }

// Elapsed returns total virtual seconds consumed.
func (r *InProcess) Elapsed() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.elapsed.Seconds()
}

// Measure implements Runner.
func (r *InProcess) Measure(cfg *flags.Config, reps int) Measurement {
	if reps < 1 {
		reps = 1
	}
	key := cfg.Key()
	phase, prof := r.currentPhase()
	// Rep indices and the cache are scoped per (phase, config): after a
	// workload shift a configuration must be genuinely re-measured, not
	// answered from its stale pre-drift verdict. Externally the measurement
	// still carries the bare configuration key.
	sk := PhaseKey(phase, key)

	r.mu.Lock()
	if !r.DisableCache {
		// A failed measurement is as cacheable as a successful one: one
		// failure condemns the configuration, so a re-proposal replays the
		// verdict at zero cost instead of re-charging the budget for a
		// known crash.
		if m, ok := r.cache[sk]; ok && (m.Failed || len(m.Walls) >= reps) {
			r.mu.Unlock()
			m.FromCache = true
			m.CostSeconds = 0
			NoteCacheHit(r.Telemetry, r.Trace, key)
			return m
		}
	}
	r.mu.Unlock()

	m := r.Retry.Run(func(n int) Measurement {
		// Each attempt draws fresh noise-rep indices so a retried run is a
		// genuinely new measurement, not a replay.
		r.mu.Lock()
		repBase := r.reps[sk]
		r.reps[sk] = repBase + reps
		r.mu.Unlock()

		m := EvalConfig(r.sim, prof, cfg, repBase, reps, r.TimeoutSeconds)
		NoteAttempt(r.Telemetry, r.Trace, key, n, n > 0, m)
		return m
	})
	NoteMeasured(r.Telemetry, r.Trace, key, m)

	r.mu.Lock()
	r.elapsed.Charge(m.CostSeconds)
	// A transient failure is no verdict: caching it would condemn a
	// configuration that merely hit a flaky launch, so only definitive
	// outcomes are memoized.
	if !r.DisableCache && !m.Transient {
		r.cache[sk] = m
	}
	r.mu.Unlock()
	return m
}

// EvalConfig performs one measurement attempt of cfg: reps repetitions
// starting at noise-rep index repBase, each cut off at timeoutSeconds
// (0 disables the cut-off). It is the transport-independent evaluation
// core shared by InProcess, the dispatch layer's local evaluator, and the
// evald measurement server — the measurement content is a pure function of
// (simulator, profile, config, repBase, reps, timeout), which is what makes
// a remote evaluation byte-identical to a local one by construction.
// Retry, caching, rep-index allocation, and telemetry stay with the caller.
func EvalConfig(sim *jvmsim.Simulator, p *workload.Profile, cfg *flags.Config, repBase, reps int, timeoutSeconds float64) Measurement {
	m := Measurement{Key: cfg.Key()}
	// Score the whole repetition batch in one simulator call: the cost
	// model runs once and only the per-rep noise factor differs.
	var buf [16]jvmsim.Result
	for _, res := range sim.RunReps(cfg, p, repBase, reps, buf[:0]) {
		cost := res.WallSeconds + LaunchOverheadSeconds
		if timeoutSeconds > 0 && !res.Failed && res.WallSeconds > timeoutSeconds {
			res.Failed = true
			res.Failure = TimeoutFailure
			res.FailureMessage = fmt.Sprintf("killed after %.0fs (timeout)", timeoutSeconds)
			cost = timeoutSeconds + LaunchOverheadSeconds
		}
		m.CostSeconds += cost
		if res.Failed {
			if !m.Failed {
				m.Failed = true
				m.Failure = res.Failure
				m.FailureMessage = res.FailureMessage
			}
			// One failure condemns the configuration; don't waste budget.
			break
		}
		m.Walls = append(m.Walls, res.WallSeconds)
		m.Pauses = append(m.Pauses, res.MaxPauseSeconds)
	}
	finalizeMeans(&m)
	return m
}

// finalizeMeans fills Mean and MeanPause from the collected walls.
func finalizeMeans(m *Measurement) {
	if len(m.Walls) == 0 || m.Failed {
		return
	}
	sum, psum := 0.0, 0.0
	for i, w := range m.Walls {
		sum += w
		if i < len(m.Pauses) {
			psum += m.Pauses[i]
		}
	}
	m.Mean = sum / float64(len(m.Walls))
	if len(m.Pauses) > 0 {
		m.MeanPause = psum / float64(len(m.Pauses))
	}
}
