package runner

import (
	"math"
	"sync"
	"testing"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/workload"
)

func newRunner(t *testing.T, name string) (*InProcess, *flags.Registry) {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no workload %s", name)
	}
	sim := jvmsim.New()
	sim.NoiseRelStdDev = 0
	return NewInProcess(sim, p), flags.NewRegistry()
}

func TestMeasureDefaults(t *testing.T) {
	r, reg := newRunner(t, "fop")
	m := r.Measure(flags.NewConfig(reg), 3)
	if m.Failed {
		t.Fatalf("default config failed: %+v", m)
	}
	if len(m.Walls) != 3 {
		t.Fatalf("expected 3 walls, got %d", len(m.Walls))
	}
	if m.Mean <= 0 || math.IsNaN(m.Mean) {
		t.Error("mean not computed")
	}
	// Cost = walls + per-launch overhead.
	wantCost := m.Walls[0] + m.Walls[1] + m.Walls[2] + 3*LaunchOverheadSeconds
	if math.Abs(m.CostSeconds-wantCost) > 1e-9 {
		t.Errorf("cost %.3f, want %.3f", m.CostSeconds, wantCost)
	}
	if math.Abs(r.Elapsed()-m.CostSeconds) > 1e-6 {
		t.Error("runner clock should equal the measurement cost to the microsecond")
	}
}

func TestMeasureCacheReplaysAtZeroCost(t *testing.T) {
	r, reg := newRunner(t, "fop")
	cfg := flags.NewConfig(reg)
	cfg.SetInt("MaxHeapSize", 1<<30)
	first := r.Measure(cfg, 2)
	elapsed := r.Elapsed()
	second := r.Measure(cfg.Clone(), 2)
	if !second.FromCache {
		t.Error("identical config should hit the cache")
	}
	if second.CostSeconds != 0 || r.Elapsed() != elapsed {
		t.Error("cache hits must not consume budget")
	}
	if second.Mean != first.Mean {
		t.Error("cache should replay the same aggregate")
	}
}

func TestMeasureCacheUpgradesOnMoreReps(t *testing.T) {
	r, reg := newRunner(t, "fop")
	cfg := flags.NewConfig(reg)
	if m := r.Measure(cfg, 1); len(m.Walls) != 1 {
		t.Fatalf("warmup measure: %+v", m)
	}
	m := r.Measure(cfg, 3)
	if m.FromCache {
		t.Error("asking for more reps than cached must re-measure")
	}
	if len(m.Walls) != 3 {
		t.Errorf("expected 3 fresh walls, got %d", len(m.Walls))
	}
}

func TestMeasureDisableCache(t *testing.T) {
	r, reg := newRunner(t, "fop")
	r.DisableCache = true
	cfg := flags.NewConfig(reg)
	r.Measure(cfg, 1)
	if m := r.Measure(cfg, 1); m.FromCache {
		t.Error("cache disabled but hit")
	}
}

func TestMeasureFailureStopsEarlyAndChargesLittle(t *testing.T) {
	r, reg := newRunner(t, "h2")
	bad := flags.NewConfig(reg)
	bad.SetBool("UseG1GC", true)
	bad.SetBool("UseSerialGC", true) // conflicting collectors
	m := r.Measure(bad, 3)
	if !m.Failed || m.Failure != jvmsim.StartupFailure {
		t.Fatalf("expected startup failure, got %+v", m)
	}
	if len(m.Walls) != 0 {
		t.Error("failed measurement should carry no walls")
	}
	// One aborted launch only — not three.
	if m.CostSeconds > 2 {
		t.Errorf("failure cost %.2fs; crashes should be cheap", m.CostSeconds)
	}
}

func TestMeasureTimeout(t *testing.T) {
	r, reg := newRunner(t, "h2")
	r.TimeoutSeconds = 1 // absurd: everything times out
	m := r.Measure(flags.NewConfig(reg), 3)
	if !m.Failed || m.Failure != TimeoutFailure {
		t.Fatalf("expected timeout, got %+v", m)
	}
	if m.CostSeconds > 2*(1+LaunchOverheadSeconds) {
		t.Errorf("timeout should cap the charge, cost %.2f", m.CostSeconds)
	}
}

func TestTimeoutDefaultsToSixTimesBaseline(t *testing.T) {
	r, reg := newRunner(t, "fop")
	base := r.Measure(flags.NewConfig(reg), 1)
	if r.TimeoutSeconds < 5*base.Mean || r.TimeoutSeconds > 7*base.Mean {
		t.Errorf("timeout %.1f not ≈6× baseline %.1f", r.TimeoutSeconds, base.Mean)
	}
}

func TestNoiseVariesAcrossRepsNotAcrossCalls(t *testing.T) {
	p, _ := workload.ByName("fop")
	sim := jvmsim.New() // noisy
	r := NewInProcess(sim, p)
	m := r.Measure(flags.NewConfig(flags.NewRegistry()), 3)
	if m.Failed {
		t.Fatal("unexpected failure")
	}
	if m.Walls[0] == m.Walls[1] && m.Walls[1] == m.Walls[2] {
		t.Error("repetitions should observe different noise")
	}
}

func TestMeasureRepsClamped(t *testing.T) {
	r, reg := newRunner(t, "fop")
	m := r.Measure(flags.NewConfig(reg), 0)
	if len(m.Walls) != 1 {
		t.Errorf("reps=0 should clamp to 1, got %d walls", len(m.Walls))
	}
}

func TestConcurrentMeasureIsSafe(t *testing.T) {
	r, reg := newRunner(t, "fop")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := flags.NewConfig(reg)
			cfg.SetInt("NewRatio", int64(1+i%8))
			r.Measure(cfg, 2)
		}(i)
	}
	wg.Wait()
	if r.Elapsed() <= 0 {
		t.Error("no virtual time consumed")
	}
}
