package runner

import (
	"encoding/json"
	"fmt"
)

// StateSnapshotter is the contract between runners and the checkpoint
// layer: a runner that can serialize its mutable measurement state —
// elapsed virtual clock, per-key noise-rep indices, and the evaluated-
// config cache — can take part in crash-safe sessions. Restoring a
// snapshot must leave the runner bit-identical to the one that took it, so
// a resumed session's fresh measurements (cache hits, rep indices, budget
// accounting) replay exactly as the uninterrupted run's would have.
//
// Wrapping runners (the chaos layer) snapshot their own counters plus
// their inner runner's state, so one SnapshotState call at the outermost
// layer captures the whole stack.
type StateSnapshotter interface {
	// SnapshotState serializes the runner's mutable state.
	SnapshotState() ([]byte, error)
	// RestoreState replaces the runner's mutable state with a snapshot
	// taken by the same runner type. It fails closed on malformed bytes.
	RestoreState(data []byte) error
}

// runnerState is the shared serialization of the three core runners'
// mutable state. Static configuration (simulator, profile, timeouts,
// retry policy) is rebuilt from the session options on resume and is
// deliberately absent: checkpoint.Meta guards against resuming under
// different options.
type runnerState struct {
	Elapsed float64                `json:"elapsed"`
	Reps    map[string]int         `json:"reps"`
	Cache   map[string]Measurement `json:"cache"`
}

func marshalRunnerState(elapsed float64, reps map[string]int, cache map[string]Measurement) ([]byte, error) {
	return json.Marshal(runnerState{Elapsed: elapsed, Reps: reps, Cache: cache})
}

func unmarshalRunnerState(data []byte) (runnerState, error) {
	var st runnerState
	if err := json.Unmarshal(data, &st); err != nil {
		return st, fmt.Errorf("runner: restore state: %w", err)
	}
	if st.Reps == nil {
		st.Reps = make(map[string]int)
	}
	if st.Cache == nil {
		st.Cache = make(map[string]Measurement)
	}
	return st, nil
}

// MarshalState serializes the canonical runner state triple for a runner
// implemented outside this package (internal/dispatch). Byte-for-byte the
// same shape the core runners write, so a checkpoint taken under a remote
// pool is indistinguishable from one taken in-process and either resumes
// under the other.
func MarshalState(elapsed float64, reps map[string]int, cache map[string]Measurement) ([]byte, error) {
	return marshalRunnerState(elapsed, reps, cache)
}

// UnmarshalState is the inverse of MarshalState; it fails closed on
// malformed bytes and never returns nil maps.
func UnmarshalState(data []byte) (elapsed float64, reps map[string]int, cache map[string]Measurement, err error) {
	st, err := unmarshalRunnerState(data)
	if err != nil {
		return 0, nil, nil, err
	}
	return st.Elapsed, st.Reps, st.Cache, nil
}

// SnapshotState implements StateSnapshotter.
func (r *InProcess) SnapshotState() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return marshalRunnerState(r.elapsed.Seconds(), r.reps, r.cache)
}

// RestoreState implements StateSnapshotter.
func (r *InProcess) RestoreState(data []byte) error {
	st, err := unmarshalRunnerState(data)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.elapsed.Set(st.Elapsed)
	r.reps, r.cache = st.Reps, st.Cache
	return nil
}

// SnapshotState implements StateSnapshotter.
func (r *Subprocess) SnapshotState() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return marshalRunnerState(r.elapsed.Seconds(), r.reps, r.cache)
}

// RestoreState implements StateSnapshotter.
func (r *Subprocess) RestoreState(data []byte) error {
	st, err := unmarshalRunnerState(data)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.elapsed.Set(st.Elapsed)
	r.reps, r.cache = st.Reps, st.Cache
	return nil
}

// SnapshotState implements StateSnapshotter.
func (m *Multi) SnapshotState() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return marshalRunnerState(m.elapsed.Seconds(), m.reps, m.cache)
}

// RestoreState implements StateSnapshotter.
func (m *Multi) RestoreState(data []byte) error {
	st, err := unmarshalRunnerState(data)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.elapsed.Set(st.Elapsed)
	m.reps, m.cache = st.Reps, st.Cache
	return nil
}
