package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// RunReport is the JSON document cmd/jvmsim prints for every run. It is the
// wire format between the subprocess runner and the fake launcher.
type RunReport struct {
	Benchmark      string  `json:"benchmark"`
	Rep            int     `json:"rep"`
	WallSeconds    float64 `json:"wall_seconds"`
	Failed         bool    `json:"failed"`
	Failure        string  `json:"failure,omitempty"`
	FailureMessage string  `json:"failure_message,omitempty"`
	Collector      string  `json:"collector,omitempty"`
	GCStopSeconds  float64 `json:"gc_stop_seconds"`
	MaxPauseSecs   float64 `json:"max_pause_seconds"`
	MinorGCs       float64 `json:"minor_gcs"`
	FullGCs        float64 `json:"full_gcs"`
}

// RepEnvVar carries the repetition index to the jvmsim subprocess, keeping
// its argv purely java-shaped.
const RepEnvVar = "JVMSIM_REP"

// Subprocess measures by launching the cmd/jvmsim binary with java-style
// arguments, exercising the same orchestration code path a tuner driving a
// real `java` would use: argument rendering, environment, exit codes, and
// output scraping. It is safe for concurrent use.
type Subprocess struct {
	// BinPath is the jvmsim executable.
	BinPath string
	// RealTimeout bounds each launch in real time (not virtual time). A
	// run killed by this deadline is a TimeoutFailure and charges
	// TimeoutSeconds of virtual budget, exactly like the virtual-timeout
	// path.
	RealTimeout time.Duration
	// TimeoutSeconds is the virtual harness timeout, as in InProcess.
	TimeoutSeconds float64
	// Retry bounds re-attempts of transient failures — launches that die
	// without a report and corrupt reports. The zero value means the
	// defaults (see RetryPolicy).
	Retry RetryPolicy
	// Telemetry and Trace optionally receive runner metrics and per-attempt
	// trace events, including real-deadline kills; see telemetry.go.
	Telemetry *telemetry.Registry
	Trace     *telemetry.Tracer

	profile *workload.Profile

	mu      sync.Mutex
	elapsed VirtualClock
	reps    map[string]int
	cache   map[string]Measurement
}

// NewSubprocess builds a subprocess runner for the given binary and profile.
func NewSubprocess(binPath string, p *workload.Profile) *Subprocess {
	return &Subprocess{
		BinPath:     binPath,
		RealTimeout: 30 * time.Second,
		profile:     p,
		reps:        make(map[string]int),
		cache:       make(map[string]Measurement),
	}
}

// Workload returns the profile being measured.
func (r *Subprocess) Workload() *workload.Profile { return r.profile }

// Elapsed returns total virtual seconds consumed.
func (r *Subprocess) Elapsed() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.elapsed.Seconds()
}

// Measure implements Runner.
func (r *Subprocess) Measure(cfg *flags.Config, reps int) Measurement {
	if reps < 1 {
		reps = 1
	}
	key := cfg.Key()

	r.mu.Lock()
	// Failed measurements replay from the cache too; see InProcess.Measure.
	if m, ok := r.cache[key]; ok && (m.Failed || len(m.Walls) >= reps) {
		r.mu.Unlock()
		m.FromCache = true
		m.CostSeconds = 0
		NoteCacheHit(r.Telemetry, r.Trace, key)
		return m
	}
	r.mu.Unlock()

	m := r.Retry.Run(func(n int) Measurement {
		r.mu.Lock()
		repBase := r.reps[key]
		r.reps[key] = repBase + reps
		r.mu.Unlock()

		m := Measurement{Key: key}
		for i := 0; i < reps; i++ {
			rep, err := r.launch(cfg, repBase+i)
			if err != nil {
				m.Failed = true
				m.Failure, m.CostSeconds = classifyLaunchError(err, r.TimeoutSeconds, m.CostSeconds)
				m.FailureMessage = err.Error()
				break
			}
			cost := rep.WallSeconds + LaunchOverheadSeconds
			failed, kind, msg := rep.Failed, jvmsim.FailureKind(rep.Failure), rep.FailureMessage
			if r.TimeoutSeconds > 0 && !failed && rep.WallSeconds > r.TimeoutSeconds {
				failed = true
				kind = TimeoutFailure
				msg = fmt.Sprintf("killed after %.0fs (timeout)", r.TimeoutSeconds)
				cost = r.TimeoutSeconds + LaunchOverheadSeconds
			}
			m.CostSeconds += cost
			if failed {
				if !m.Failed {
					m.Failed, m.Failure, m.FailureMessage = true, kind, msg
				}
				break
			}
			m.Walls = append(m.Walls, rep.WallSeconds)
			m.Pauses = append(m.Pauses, rep.MaxPauseSecs)
		}
		finalizeMeans(&m)
		NoteAttempt(r.Telemetry, r.Trace, key, n, n > 0, m)
		return m
	})
	NoteMeasured(r.Telemetry, r.Trace, key, m)

	r.mu.Lock()
	r.elapsed.Charge(m.CostSeconds)
	// Transient failures are not verdicts; see InProcess.Measure.
	if !m.Transient {
		r.cache[key] = m
	}
	r.mu.Unlock()
	return m
}

// classifyLaunchError maps a launch error to a failure kind and the cost to
// add for the attempt. A kill by the real-time deadline is a timeout: the
// harness waited the full timeout out, so it charges TimeoutSeconds like
// the virtual-timeout path (the launch overhead rides on top either way).
// Anything else — the process never ran, or its report was unreadable — is
// transient and charges only the wasted launch overhead.
func classifyLaunchError(err error, timeoutSeconds, cost float64) (jvmsim.FailureKind, float64) {
	switch {
	case errors.Is(err, errRealTimeout):
		return TimeoutFailure, cost + timeoutSeconds + LaunchOverheadSeconds
	case errors.Is(err, errCorruptReport):
		return CorruptReportFailure, cost + LaunchOverheadSeconds
	default:
		return LaunchFlakeFailure, cost + LaunchOverheadSeconds
	}
}

// Sentinel launch errors; Measure classifies them via classifyLaunchError.
var (
	errRealTimeout   = errors.New("runner: killed by the real-time launch deadline")
	errCorruptReport = errors.New("runner: corrupt report")
)

// launch runs the binary once and parses its report. The binary exits 1 on
// simulated JVM failures but still prints a report, exactly like scraping a
// crashed java run's output; only missing/corrupt output is an error here.
func (r *Subprocess) launch(cfg *flags.Config, rep int) (*RunReport, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.RealTimeout)
	defer cancel()
	// Full-fidelity rendering: explicit-at-default assignments must reach
	// the subprocess, since the simulated VM distinguishes forced defaults
	// from silent ones (collector conflicts, engaged inert flags).
	args := append(cfg.ExplicitArgs(), r.profile.Name)
	cmd := exec.CommandContext(ctx, r.BinPath, args...)
	cmd.Env = append(cmd.Environ(), RepEnvVar+"="+strconv.Itoa(rep))
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	runErr := cmd.Run()
	if ctx.Err() == context.DeadlineExceeded {
		// The harness killed the run: whatever output exists is from a
		// process that was cut down mid-write, so don't trust it.
		return nil, fmt.Errorf("%w after %s", errRealTimeout, r.RealTimeout)
	}

	var report RunReport
	if jsonErr := json.Unmarshal(stdout.Bytes(), &report); jsonErr != nil {
		if runErr != nil {
			return nil, fmt.Errorf("runner: jvmsim failed without a report: %v (stderr: %s)",
				runErr, bytes.TrimSpace(stderr.Bytes()))
		}
		return nil, fmt.Errorf("%w: cannot parse jvmsim report: %v", errCorruptReport, jsonErr)
	}
	return &report, nil
}
