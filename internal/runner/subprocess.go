package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/workload"
)

// RunReport is the JSON document cmd/jvmsim prints for every run. It is the
// wire format between the subprocess runner and the fake launcher.
type RunReport struct {
	Benchmark      string  `json:"benchmark"`
	Rep            int     `json:"rep"`
	WallSeconds    float64 `json:"wall_seconds"`
	Failed         bool    `json:"failed"`
	Failure        string  `json:"failure,omitempty"`
	FailureMessage string  `json:"failure_message,omitempty"`
	Collector      string  `json:"collector,omitempty"`
	GCStopSeconds  float64 `json:"gc_stop_seconds"`
	MaxPauseSecs   float64 `json:"max_pause_seconds"`
	MinorGCs       float64 `json:"minor_gcs"`
	FullGCs        float64 `json:"full_gcs"`
}

// RepEnvVar carries the repetition index to the jvmsim subprocess, keeping
// its argv purely java-shaped.
const RepEnvVar = "JVMSIM_REP"

// Subprocess measures by launching the cmd/jvmsim binary with java-style
// arguments, exercising the same orchestration code path a tuner driving a
// real `java` would use: argument rendering, environment, exit codes, and
// output scraping. It is safe for concurrent use.
type Subprocess struct {
	// BinPath is the jvmsim executable.
	BinPath string
	// RealTimeout bounds each launch in real time (not virtual time).
	RealTimeout time.Duration
	// TimeoutSeconds is the virtual harness timeout, as in InProcess.
	TimeoutSeconds float64

	profile *workload.Profile

	mu      sync.Mutex
	elapsed float64
	reps    map[string]int
	cache   map[string]Measurement
}

// NewSubprocess builds a subprocess runner for the given binary and profile.
func NewSubprocess(binPath string, p *workload.Profile) *Subprocess {
	return &Subprocess{
		BinPath:     binPath,
		RealTimeout: 30 * time.Second,
		profile:     p,
		reps:        make(map[string]int),
		cache:       make(map[string]Measurement),
	}
}

// Workload returns the profile being measured.
func (r *Subprocess) Workload() *workload.Profile { return r.profile }

// Elapsed returns total virtual seconds consumed.
func (r *Subprocess) Elapsed() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.elapsed
}

// Measure implements Runner.
func (r *Subprocess) Measure(cfg *flags.Config, reps int) Measurement {
	if reps < 1 {
		reps = 1
	}
	key := cfg.Key()

	r.mu.Lock()
	// Failed measurements replay from the cache too; see InProcess.Measure.
	if m, ok := r.cache[key]; ok && (m.Failed || len(m.Walls) >= reps) {
		r.mu.Unlock()
		m.FromCache = true
		m.CostSeconds = 0
		return m
	}
	repBase := r.reps[key]
	r.reps[key] = repBase + reps
	r.mu.Unlock()

	m := Measurement{Key: key}
	for i := 0; i < reps; i++ {
		rep, err := r.launch(cfg, repBase+i)
		if err != nil {
			m.Failed = true
			m.Failure = jvmsim.StartupFailure
			m.FailureMessage = err.Error()
			m.CostSeconds += launchOverheadSeconds
			break
		}
		cost := rep.WallSeconds + launchOverheadSeconds
		failed, kind, msg := rep.Failed, jvmsim.FailureKind(rep.Failure), rep.FailureMessage
		if r.TimeoutSeconds > 0 && !failed && rep.WallSeconds > r.TimeoutSeconds {
			failed = true
			kind = TimeoutFailure
			msg = fmt.Sprintf("killed after %.0fs (timeout)", r.TimeoutSeconds)
			cost = r.TimeoutSeconds + launchOverheadSeconds
		}
		m.CostSeconds += cost
		if failed {
			if !m.Failed {
				m.Failed, m.Failure, m.FailureMessage = true, kind, msg
			}
			break
		}
		m.Walls = append(m.Walls, rep.WallSeconds)
		m.Pauses = append(m.Pauses, rep.MaxPauseSecs)
	}
	if len(m.Walls) > 0 && !m.Failed {
		sum, psum := 0.0, 0.0
		for i, w := range m.Walls {
			sum += w
			psum += m.Pauses[i]
		}
		m.Mean = sum / float64(len(m.Walls))
		m.MeanPause = psum / float64(len(m.Pauses))
	}

	r.mu.Lock()
	r.elapsed += m.CostSeconds
	r.cache[key] = m
	r.mu.Unlock()
	return m
}

// launch runs the binary once and parses its report. The binary exits 1 on
// simulated JVM failures but still prints a report, exactly like scraping a
// crashed java run's output; only missing/corrupt output is an error here.
func (r *Subprocess) launch(cfg *flags.Config, rep int) (*RunReport, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.RealTimeout)
	defer cancel()
	args := append(cfg.CommandLine(), r.profile.Name)
	cmd := exec.CommandContext(ctx, r.BinPath, args...)
	cmd.Env = append(cmd.Environ(), RepEnvVar+"="+strconv.Itoa(rep))
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	runErr := cmd.Run()

	var report RunReport
	if jsonErr := json.Unmarshal(stdout.Bytes(), &report); jsonErr != nil {
		if runErr != nil {
			return nil, fmt.Errorf("runner: jvmsim failed without a report: %v (stderr: %s)",
				runErr, bytes.TrimSpace(stderr.Bytes()))
		}
		return nil, fmt.Errorf("runner: cannot parse jvmsim report: %v", jsonErr)
	}
	return &report, nil
}
