package runner

import (
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/workload"
)

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

// jvmsimBinary builds cmd/jvmsim once per test binary.
func jvmsimBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "jvmsim-bin")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "jvmsim")
		cmd := exec.Command("go", "build", "-o", binPath, "repro/cmd/jvmsim")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			t.Logf("build output: %s", out)
		}
	})
	if buildErr != nil {
		t.Skipf("cannot build jvmsim binary: %v", buildErr)
	}
	return binPath
}

func TestSubprocessMeasureMatchesInProcess(t *testing.T) {
	bin := jvmsimBinary(t)
	p, _ := workload.ByName("fop")
	sub := NewSubprocess(bin, p)
	sim := jvmsim.New()
	inp := NewInProcess(sim, p)
	inp.TimeoutSeconds = 0

	cfg := flags.NewConfig(flags.NewRegistry())
	cfg.SetBool("UseG1GC", true)
	cfg.SetBool("UseParallelGC", false)
	cfg.SetInt("MaxHeapSize", 1<<30)

	ms := sub.Measure(cfg, 2)
	mi := inp.Measure(cfg, 2)
	if ms.Failed || mi.Failed {
		t.Fatalf("runs failed: sub=%+v in=%+v", ms, mi)
	}
	// Same model, same noise hash, same rep indices ⇒ identical walls.
	if len(ms.Walls) != len(mi.Walls) {
		t.Fatalf("wall counts differ: %d vs %d", len(ms.Walls), len(mi.Walls))
	}
	for i := range ms.Walls {
		diff := ms.Walls[i] - mi.Walls[i]
		if diff < -1e-6 || diff > 1e-6 {
			t.Errorf("wall %d differs: %.6f vs %.6f", i, ms.Walls[i], mi.Walls[i])
		}
	}
	if sub.Elapsed() <= 0 {
		t.Error("subprocess runner should consume virtual time")
	}
}

func TestSubprocessReportsVMFailures(t *testing.T) {
	bin := jvmsimBinary(t)
	p, _ := workload.ByName("h2")
	sub := NewSubprocess(bin, p)
	bad := flags.NewConfig(flags.NewRegistry())
	bad.SetBool("UseG1GC", true)
	bad.SetBool("UseConcMarkSweepGC", true)
	m := sub.Measure(bad, 1)
	if !m.Failed || m.Failure != jvmsim.StartupFailure {
		t.Errorf("expected startup failure through the subprocess path, got %+v", m)
	}
}

func TestSubprocessOOM(t *testing.T) {
	bin := jvmsimBinary(t)
	p, _ := workload.ByName("h2")
	sub := NewSubprocess(bin, p)
	small := flags.NewConfig(flags.NewRegistry())
	small.SetInt("MaxHeapSize", 128<<20)
	small.SetInt("InitialHeapSize", 64<<20)
	m := sub.Measure(small, 1)
	if !m.Failed || m.Failure != jvmsim.OOMFailure {
		t.Errorf("expected OOM through the subprocess path, got %+v", m)
	}
}

func TestSubprocessCache(t *testing.T) {
	bin := jvmsimBinary(t)
	p, _ := workload.ByName("fop")
	sub := NewSubprocess(bin, p)
	cfg := flags.NewConfig(flags.NewRegistry())
	sub.Measure(cfg, 1)
	m := sub.Measure(cfg, 1)
	if !m.FromCache || m.CostSeconds != 0 {
		t.Error("second identical measurement should replay from cache")
	}
}

func TestJvmsimBinaryBadUsage(t *testing.T) {
	bin := jvmsimBinary(t)
	// Unknown benchmark → exit 2.
	if err := exec.Command(bin, "nope").Run(); err == nil {
		t.Error("unknown benchmark should fail")
	}
	// Unrecognized VM option → exit 1 like the real launcher.
	cmd := exec.Command(bin, "-XX:+NotARealFlag", "fop")
	if err := cmd.Run(); err == nil {
		t.Error("unrecognized option should fail")
	}
	// -list prints all 29 benchmarks.
	out, err := exec.Command(bin, "-list").Output()
	if err != nil {
		t.Fatalf("-list failed: %v", err)
	}
	if lines := len(splitLines(string(out))); lines != 29 {
		t.Errorf("-list printed %d names, want 29", lines)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
