package runner

import (
	"repro/internal/telemetry"
)

// The runners share one instrumentation vocabulary so every runner — and the
// chaos layer wrapping one — reports the same series:
//
//	runner_measures_total        fresh (non-cached) measurements delivered
//	runner_attempts_total        launch attempts, retries included
//	runner_retries_total         transient failures that were retried
//	runner_flakes_total          transient failures absorbed on the way to a verdict
//	runner_timeouts_total        runs killed by the harness timeout
//	runner_cache_hits_total      measurements replayed from the cache
//	runner_condemned_total       deterministic failures cached as verdicts
//	runner_measure_cost_seconds  histogram of virtual cost per measurement
//
// When a ChaosRunner wraps a runner, wire telemetry to the chaos layer only:
// it observes every attempt (injected and clean) with global attempt
// indices, so instrumenting both layers would double-count.

// NoteCacheHit records a measurement replayed from the cache at zero cost.
func NoteCacheHit(reg *telemetry.Registry, tr *telemetry.Tracer, key string) {
	reg.Counter("runner_cache_hits_total").Inc()
	tr.Record(key, telemetry.Event{Kind: telemetry.EvCacheHit})
}

// NoteAttempt records the outcome of launch attempt n of key: the attempt
// itself, the retry that scheduled it (when retried), and a timeout kill.
// m is the single attempt's measurement, before retry accounting. n is the
// key's attempt index — for plain runners the retry-loop index, for the
// chaos layer the per-key global attempt counter.
func NoteAttempt(reg *telemetry.Registry, tr *telemetry.Tracer, key string, n int, retried bool, m Measurement) {
	if reg == nil && tr == nil {
		return
	}
	if retried {
		reg.Counter("runner_retries_total").Inc()
		tr.Record(key, telemetry.Event{Kind: telemetry.EvRetry, Attempt: n})
	}
	reg.Counter("runner_attempts_total").Inc()
	detail := "ok"
	if m.Failed {
		detail = string(m.Failure)
		if m.Failure == TimeoutFailure {
			reg.Counter("runner_timeouts_total").Inc()
		}
	}
	tr.Record(key, telemetry.Event{
		Kind: telemetry.EvAttempt, Attempt: n, Cost: m.CostSeconds, Detail: detail,
	})
}

// NoteMeasured records a completed fresh measurement: its virtual cost, the
// flakes absorbed reaching it, and — for deterministic failures — the
// condemnation that caches the verdict.
func NoteMeasured(reg *telemetry.Registry, tr *telemetry.Tracer, key string, m Measurement) {
	if reg == nil && tr == nil {
		return
	}
	reg.Counter("runner_measures_total").Inc()
	if m.Flakes > 0 {
		reg.Counter("runner_flakes_total").Add(uint64(m.Flakes))
	}
	reg.Histogram("runner_measure_cost_seconds", telemetry.DefSecondsBuckets).Observe(m.CostSeconds)
	if m.Failed && !m.Transient {
		reg.Counter("runner_condemned_total").Inc()
		tr.Record(key, telemetry.Event{Kind: telemetry.EvCondemned, Detail: string(m.Failure)})
	}
}
