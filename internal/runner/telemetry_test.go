package runner

import (
	"testing"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func instrumented(t *testing.T, name string) (*InProcess, *flags.Registry, *telemetry.Registry, *telemetry.Tracer) {
	t.Helper()
	r, reg := newRunner(t, name)
	r.Telemetry = telemetry.New()
	r.Trace = telemetry.NewTracer(0)
	return r, reg, r.Telemetry, r.Trace
}

func TestTelemetryCountsMeasureAndCacheHit(t *testing.T) {
	r, reg, tel, tr := instrumented(t, "fop")
	cfg := flags.NewConfig(reg)

	first := r.Measure(cfg, 2)
	if first.Failed {
		t.Fatalf("measure failed: %+v", first)
	}
	tr.Commit(cfg.Key(), 10)
	second := r.Measure(cfg.Clone(), 2)
	if !second.FromCache {
		t.Fatal("second measure should replay from cache")
	}
	tr.Commit(cfg.Key(), 20)

	snap := tel.Snapshot()
	for name, want := range map[string]float64{
		"runner_measures_total":             1,
		"runner_attempts_total":             1,
		"runner_cache_hits_total":           1,
		"runner_measure_cost_seconds_count": 1,
	} {
		if snap[name] != want {
			t.Errorf("%s = %g, want %g", name, snap[name], want)
		}
	}
	if snap["runner_measure_cost_seconds_sum"] != first.CostSeconds {
		t.Errorf("cost histogram sum = %g, want %g",
			snap["runner_measure_cost_seconds_sum"], first.CostSeconds)
	}

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("want 2 events, got %d: %+v", len(evs), evs)
	}
	if evs[0].Kind != telemetry.EvAttempt || evs[0].T != 10 || evs[0].Detail != "ok" {
		t.Errorf("first event wrong: %+v", evs[0])
	}
	if evs[1].Kind != telemetry.EvCacheHit || evs[1].T != 20 {
		t.Errorf("second event wrong: %+v", evs[1])
	}
}

func TestTelemetryCountsTimeoutAndCondemnation(t *testing.T) {
	r, reg, tel, tr := instrumented(t, "fop")
	r.TimeoutSeconds = 1e-6 // every run is hopeless
	cfg := flags.NewConfig(reg)

	m := r.Measure(cfg, 1)
	if !m.Failed || m.Failure != TimeoutFailure {
		t.Fatalf("expected a timeout failure, got %+v", m)
	}
	tr.Commit(cfg.Key(), 5)

	snap := tel.Snapshot()
	for name, want := range map[string]float64{
		"runner_timeouts_total":  1,
		"runner_condemned_total": 1,
		"runner_measures_total":  1,
	} {
		if snap[name] != want {
			t.Errorf("%s = %g, want %g", name, snap[name], want)
		}
	}

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("want attempt+condemned, got %+v", evs)
	}
	if evs[0].Kind != telemetry.EvAttempt || evs[0].Detail != string(TimeoutFailure) {
		t.Errorf("attempt event wrong: %+v", evs[0])
	}
	if evs[1].Kind != telemetry.EvCondemned || evs[1].Detail != string(TimeoutFailure) {
		t.Errorf("condemned event wrong: %+v", evs[1])
	}
}

func TestTelemetryNilIsFreeOfSideEffects(t *testing.T) {
	// The un-instrumented path must stay exactly as before: nil Registry
	// and Tracer no-op through the Note helpers.
	r, reg := newRunner(t, "fop")
	m := r.Measure(flags.NewConfig(reg), 1)
	if m.Failed {
		t.Fatalf("measure failed: %+v", m)
	}
	NoteCacheHit(nil, nil, "k")
	NoteAttempt(nil, nil, "k", 0, false, m)
	NoteMeasured(nil, nil, "k", m)
}

func benchMeasure(b *testing.B, instrument bool) {
	p, ok := workload.ByName("fop")
	if !ok {
		b.Fatal("no workload fop")
	}
	sim := jvmsim.New()
	sim.NoiseRelStdDev = 0
	r := NewInProcess(sim, p)
	r.DisableCache = true
	if instrument {
		r.Telemetry = telemetry.New()
		r.Trace = telemetry.NewTracer(0)
	}
	cfg := flags.NewConfig(flags.NewRegistry())
	key := cfg.Key()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Measure(cfg, 1)
		if instrument && i%64 == 63 {
			r.Trace.Commit(key, float64(i))
		}
	}
}

// The pair quantifies instrumentation overhead on the hot measurement path;
// the no-op variant is the nil-receiver fast path every un-instrumented
// session takes.
func BenchmarkInProcessMeasureInstrumented(b *testing.B) { benchMeasure(b, true) }
func BenchmarkInProcessMeasureNoTelemetry(b *testing.B)  { benchMeasure(b, false) }
