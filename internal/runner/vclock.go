package runner

import "math"

// VirtualClock accumulates virtual seconds as an integer count of
// microseconds. Runners charge measurement costs from concurrent worker
// goroutines in completion order, and float64 addition is not associative —
// summing the same costs in a different order can move the total by an ulp,
// which is enough to make two fixed-seed sessions write checkpoints that
// differ by one byte. Integer addition is associative, so a microsecond-
// gridded clock reads the same no matter which worker finished first, and
// the persisted seconds value round-trips exactly through Set for clocks
// under ~2^51 µs (about 71 virtual years).
//
// The ≤0.5 µs-per-charge quantization is invisible next to simulated wall
// times measured in seconds; the session's budget accounting uses the
// executor's slot-ordered virtual time, never this clock.
type VirtualClock struct {
	micros int64
}

// Charge adds a cost in seconds, rounded to the microsecond grid.
func (c *VirtualClock) Charge(seconds float64) {
	c.micros += int64(math.Round(seconds * 1e6))
}

// Seconds reads the clock in seconds.
func (c *VirtualClock) Seconds() float64 {
	return float64(c.micros) / 1e6
}

// Set restores the clock from a persisted seconds value. For any clock
// Seconds() round-trips through Set exactly, so a resumed session's clock
// is bit-identical to the one that took the snapshot.
func (c *VirtualClock) Set(seconds float64) {
	c.micros = int64(math.Round(seconds * 1e6))
}
