package runner

import "testing"

// TestVirtualClockOrderIndependent pins the property the clock exists for:
// charging the same costs in any completion order reads the same total.
// The float64 equivalent drifts by an ulp across orders (addition is not
// associative), which made parallel sessions' checkpoints flap by a byte.
func TestVirtualClockOrderIndependent(t *testing.T) {
	costs := []float64{256.7304119611988, 1843.1902774523447, 0.3331179, 1001.75281965432}
	var fwd, rev VirtualClock
	for _, c := range costs {
		fwd.Charge(c)
	}
	for i := len(costs) - 1; i >= 0; i-- {
		rev.Charge(costs[i])
	}
	if fwd.Seconds() != rev.Seconds() {
		t.Errorf("order-dependent clock: %v vs %v", fwd.Seconds(), rev.Seconds())
	}
}

// TestVirtualClockSetRoundTrips pins resume determinism: restoring a clock
// from its own persisted Seconds() value must be exact, so a resumed
// session's runner state stays bit-identical to the uninterrupted run's.
func TestVirtualClockSetRoundTrips(t *testing.T) {
	var c VirtualClock
	for _, cost := range []float64{3102.0066024947, 0.000001, 7.25, 1e9} {
		c.Charge(cost)
		var r VirtualClock
		r.Set(c.Seconds())
		if r != c {
			t.Fatalf("Set(%v) = %+v, want %+v", c.Seconds(), r, c)
		}
	}
}
