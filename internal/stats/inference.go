package stats

import "math"

// WelchT computes Welch's unequal-variance t-test for the difference of two
// sample means. It returns the t statistic and the Welch–Satterthwaite
// degrees of freedom. Callers compare |t| against a critical value (see
// TCritical95) to decide whether two configurations genuinely differ — the
// guard the tuner's reports use before claiming an improvement is real
// rather than measurement noise.
//
// NaN is returned when either sample has fewer than two points.
func WelchT(a, b []float64) (t, df float64) {
	if len(a) < 2 || len(b) < 2 {
		return math.NaN(), math.NaN()
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a)/float64(len(a)), Variance(b)/float64(len(b))
	if va+vb == 0 {
		if ma == mb {
			return 0, float64(len(a) + len(b) - 2)
		}
		return math.Inf(sign(ma - mb)), float64(len(a) + len(b) - 2)
	}
	t = (ma - mb) / math.Sqrt(va+vb)
	df = (va + vb) * (va + vb) /
		(va*va/float64(len(a)-1) + vb*vb/float64(len(b)-1))
	return t, df
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// TCritical95 returns the two-sided 95% critical value of Student's t for
// the given degrees of freedom, from a table with interpolation. Above 120
// degrees of freedom the normal value 1.96 is used.
func TCritical95(df float64) float64 {
	table := []struct{ df, t float64 }{
		{1, 12.706}, {2, 4.303}, {3, 3.182}, {4, 2.776}, {5, 2.571},
		{6, 2.447}, {7, 2.365}, {8, 2.306}, {9, 2.262}, {10, 2.228},
		{12, 2.179}, {15, 2.131}, {20, 2.086}, {25, 2.060}, {30, 2.042},
		{40, 2.021}, {60, 2.000}, {120, 1.980},
	}
	if math.IsNaN(df) || df < 1 {
		return math.NaN()
	}
	if df >= 120 {
		return 1.96
	}
	for i := 1; i < len(table); i++ {
		if df <= table[i].df {
			lo, hi := table[i-1], table[i]
			frac := (df - lo.df) / (hi.df - lo.df)
			return lo.t + frac*(hi.t-lo.t)
		}
	}
	return 1.96
}

// SignificantlyFaster reports whether sample a's mean is smaller than
// sample b's with 95% confidence under Welch's test.
func SignificantlyFaster(a, b []float64) bool {
	t, df := WelchT(a, b)
	if math.IsNaN(t) {
		return false
	}
	return t < 0 && math.Abs(t) > TCritical95(df)
}

// BootstrapCI returns a percentile bootstrap confidence interval for the
// mean of xs at the given confidence level (e.g. 0.95), using the supplied
// deterministic uint64 source for resampling (pass a seeded PRNG's Uint64).
// It returns (lo, hi); both are NaN for empty input.
func BootstrapCI(xs []float64, confidence float64, resamples int, next func() uint64) (lo, hi float64) {
	if len(xs) == 0 || confidence <= 0 || confidence >= 1 || resamples < 1 {
		return math.NaN(), math.NaN()
	}
	means := make([]float64, resamples)
	n := uint64(len(xs))
	for r := 0; r < resamples; r++ {
		sum := 0.0
		for i := 0; i < len(xs); i++ {
			sum += xs[next()%n]
		}
		means[r] = sum / float64(len(xs))
	}
	alpha := (1 - confidence) / 2
	return Percentile(means, alpha*100), Percentile(means, (1-alpha)*100)
}
