package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestWelchTDegenerate(t *testing.T) {
	if tt, _ := WelchT([]float64{1}, []float64{1, 2}); !math.IsNaN(tt) {
		t.Error("one-point sample should yield NaN")
	}
	tt, df := WelchT([]float64{5, 5, 5}, []float64{5, 5, 5})
	if tt != 0 || df <= 0 {
		t.Errorf("identical constant samples: t=%v df=%v", tt, df)
	}
	tt, _ = WelchT([]float64{9, 9}, []float64{5, 5})
	if !math.IsInf(tt, 1) {
		t.Errorf("zero-variance different means should be ±Inf, got %v", tt)
	}
	tt, _ = WelchT([]float64{1, 1}, []float64{5, 5})
	if !math.IsInf(tt, -1) {
		t.Errorf("sign should follow mean difference, got %v", tt)
	}
}

func TestWelchTKnownValue(t *testing.T) {
	// Classic example: clearly separated samples give a large |t|.
	a := []float64{10.1, 10.3, 9.9, 10.0, 10.2}
	b := []float64{12.0, 12.2, 11.8, 12.1, 11.9}
	tt, df := WelchT(a, b)
	if tt >= 0 {
		t.Errorf("a is faster; t should be negative, got %v", tt)
	}
	if math.Abs(tt) < 10 {
		t.Errorf("separation should be strong, |t|=%v", math.Abs(tt))
	}
	if df < 4 || df > 8 {
		t.Errorf("df=%v outside plausible Welch range", df)
	}
}

func TestTCritical95(t *testing.T) {
	cases := []struct{ df, want float64 }{
		{1, 12.706}, {2, 4.303}, {10, 2.228}, {120, 1.96}, {1e6, 1.96},
	}
	for _, c := range cases {
		if got := TCritical95(c.df); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("TCritical95(%v) = %v, want %v", c.df, got, c.want)
		}
	}
	// Interpolation is monotone decreasing.
	prev := TCritical95(1)
	for df := 2.0; df <= 120; df++ {
		cur := TCritical95(df)
		if cur > prev+1e-12 {
			t.Fatalf("critical value increased at df=%v", df)
		}
		prev = cur
	}
	if !math.IsNaN(TCritical95(0.5)) || !math.IsNaN(TCritical95(math.NaN())) {
		t.Error("df<1 should be NaN")
	}
}

func TestSignificantlyFaster(t *testing.T) {
	fast := []float64{10.0, 10.1, 9.9, 10.05, 9.95}
	slow := []float64{12.0, 12.1, 11.9, 12.05, 11.95}
	if !SignificantlyFaster(fast, slow) {
		t.Error("clear separation should be significant")
	}
	if SignificantlyFaster(slow, fast) {
		t.Error("direction matters")
	}
	noisyA := []float64{10.0, 12.0, 11.0}
	noisyB := []float64{10.5, 11.5, 11.2}
	if SignificantlyFaster(noisyA, noisyB) {
		t.Error("overlapping samples should not be significant")
	}
	if SignificantlyFaster([]float64{1}, []float64{2, 3}) {
		t.Error("insufficient data should not be significant")
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 50 + rng.NormFloat64()*5
	}
	lo, hi := BootstrapCI(xs, 0.95, 2000, rng.Uint64)
	m := Mean(xs)
	if !(lo < m && m < hi) {
		t.Errorf("mean %v outside CI [%v, %v]", m, lo, hi)
	}
	// CI half-width should be near 1.96·σ/√n ≈ 1.
	if hi-lo < 0.5 || hi-lo > 5 {
		t.Errorf("CI width %v implausible", hi-lo)
	}
	// Degenerate inputs.
	if l, h := BootstrapCI(nil, 0.95, 100, rng.Uint64); !math.IsNaN(l) || !math.IsNaN(h) {
		t.Error("empty input should be NaN")
	}
	if l, _ := BootstrapCI(xs, 0, 100, rng.Uint64); !math.IsNaN(l) {
		t.Error("bad confidence should be NaN")
	}
	if l, _ := BootstrapCI(xs, 0.95, 0, rng.Uint64); !math.IsNaN(l) {
		t.Error("zero resamples should be NaN")
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	a1, b1 := BootstrapCI(xs, 0.9, 500, rand.New(rand.NewSource(7)).Uint64)
	a2, b2 := BootstrapCI(xs, 0.9, 500, rand.New(rand.NewSource(7)).Uint64)
	if a1 != a2 || b1 != b2 {
		t.Error("same source must reproduce the interval")
	}
}
