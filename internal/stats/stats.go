// Package stats provides the small set of summary statistics the tuner and
// the experiment harness need: central tendency, dispersion, normal-theory
// confidence intervals, and speedup/improvement arithmetic.
//
// All functions are pure and operate on float64 slices. Functions that are
// undefined on empty input return NaN rather than panicking, so callers can
// propagate "no data" without special cases.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs, or NaN if xs is empty.
// The input slice is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Min returns the smallest element of xs, or NaN if xs is empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or NaN if xs is empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Variance returns the unbiased sample variance of xs.
// It returns NaN for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
// It returns NaN for fewer than two samples.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// StdErr returns the standard error of the mean of xs.
// It returns NaN for fewer than two samples.
func StdErr(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns NaN if xs is empty or p is
// out of range. The input slice is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 100 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// CI95 returns the half-width of a 95% normal-theory confidence interval for
// the mean of xs. It returns 0 for fewer than two samples, which lets callers
// print "x ± 0" for single measurements.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdErr(xs)
}

// Speedup returns baseline/tuned: how many times faster the tuned time is.
// A result of 1.25 means "25% faster". Returns NaN when tuned is zero.
func Speedup(baseline, tuned float64) float64 {
	if tuned == 0 {
		return math.NaN()
	}
	return baseline / tuned
}

// ImprovementPct returns the relative reduction in execution time as a
// percentage: 100 * (baseline - tuned) / baseline. Positive values mean the
// tuned configuration is faster. Returns NaN when baseline is zero.
//
// This matches the paper's reporting convention ("improved by 19%").
func ImprovementPct(baseline, tuned float64) float64 {
	if baseline == 0 {
		return math.NaN()
	}
	return 100 * (baseline - tuned) / baseline
}

// GeoMean returns the geometric mean of xs. All inputs must be positive;
// non-positive inputs yield NaN. Returns NaN if xs is empty.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Summary bundles the statistics the report package prints for a sample.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Min    float64
	Max    float64
	StdDev float64
	CI95   float64
}

// Summarize computes a Summary for xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Median(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		StdDev: StdDev(xs),
		CI95:   CI95(xs),
	}
}
