package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, math.NaN()},
		{[]float64{}, math.NaN()},
		{[]float64{3}, 3},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, math.NaN()},
		{[]float64{5}, 5},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestMinMax(t *testing.T) {
	in := []float64{3, -1, 7, 2}
	if got := Min(in); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(in); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty slice should be NaN")
	}
}

func TestVarianceStdDev(t *testing.T) {
	in := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic dataset is 32/7.
	if got, want := Variance(in), 32.0/7.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got, want := StdDev(in), math.Sqrt(32.0/7.0); !almostEqual(got, want, 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of one sample should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	in := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(in, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(in, -1)) || !math.IsNaN(Percentile(in, 101)) {
		t.Error("out-of-range percentile should be NaN")
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile of empty slice should be NaN")
	}
	if got := Percentile([]float64{42}, 99); got != 42 {
		t.Errorf("Percentile of singleton = %v, want 42", got)
	}
}

func TestCI95(t *testing.T) {
	if got := CI95([]float64{5}); got != 0 {
		t.Errorf("CI95 of one sample = %v, want 0", got)
	}
	in := []float64{10, 12, 11, 13}
	want := 1.96 * StdDev(in) / 2 // sqrt(4) = 2
	if got := CI95(in); !almostEqual(got, want, 1e-12) {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
}

func TestSpeedupAndImprovement(t *testing.T) {
	if got := Speedup(200, 100); got != 2 {
		t.Errorf("Speedup = %v, want 2", got)
	}
	if !math.IsNaN(Speedup(1, 0)) {
		t.Error("Speedup with zero tuned time should be NaN")
	}
	if got := ImprovementPct(100, 81); !almostEqual(got, 19, 1e-12) {
		t.Errorf("ImprovementPct = %v, want 19", got)
	}
	if got := ImprovementPct(100, 120); !almostEqual(got, -20, 1e-12) {
		t.Errorf("ImprovementPct regression = %v, want -20", got)
	}
	if !math.IsNaN(ImprovementPct(0, 1)) {
		t.Error("ImprovementPct with zero baseline should be NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, 0})) {
		t.Error("GeoMean with zero should be NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("GeoMean of empty slice should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	in := []float64{1, 2, 3}
	s := Summarize(in)
	if s.N != 3 || s.Mean != 2 || s.Median != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summarize = %+v", s)
	}
}

// Property: the mean always lies within [min, max].
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: shifting every element by c shifts the mean by c and leaves the
// standard deviation unchanged.
func TestShiftInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		c := rng.Float64()*100 - 50
		for i := range xs {
			xs[i] = rng.Float64() * 1000
			ys[i] = xs[i] + c
		}
		if !almostEqual(Mean(ys), Mean(xs)+c, 1e-6) {
			t.Fatalf("mean shift violated: %v vs %v + %v", Mean(ys), Mean(xs), c)
		}
		if !almostEqual(StdDev(ys), StdDev(xs), 1e-6) {
			t.Fatalf("stddev shift-invariance violated")
		}
	}
}

// Property: Speedup and ImprovementPct are consistent:
// improvement = 100*(1 - 1/speedup).
func TestSpeedupImprovementConsistency(t *testing.T) {
	f := func(b, tn uint16) bool {
		baseline := float64(b) + 1
		tuned := float64(tn) + 1
		s := Speedup(baseline, tuned)
		imp := ImprovementPct(baseline, tuned)
		return almostEqual(imp, 100*(1-1/s), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: GeoMean of positive values lies within [min, max].
func TestGeoMeanBoundedProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1
		}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
