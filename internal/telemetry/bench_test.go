package telemetry

import (
	"testing"
)

// The registry's design claim is negligible contention at high worker
// counts: a counter increment is one atomic add on a sharded, padded cell.
// Run with -cpu to see the parallel scaling.

func BenchmarkCounterInc(b *testing.B) {
	c := New().Counter("c_total")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkRegistryLookup(b *testing.B) {
	reg := New()
	reg.Counter("hot_total")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			reg.Counter("hot_total").Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("h", DefSecondsBuckets)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(3.7)
		}
	})
}

func BenchmarkTracerRecordCommit(b *testing.B) {
	tr := NewTracer(1 << 12)
	for i := 0; i < b.N; i++ {
		tr.Record("key", Event{Kind: EvAttempt, Attempt: 0, Cost: 1})
		tr.Commit("key", float64(i))
	}
}
