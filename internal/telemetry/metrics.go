// Package telemetry is the tuning farm's observability subsystem: a
// low-overhead metric registry (counters, gauges, fixed-bucket histograms)
// with Prometheus text-format exposition, and a structured session tracer —
// a bounded ring buffer of typed events whose JSONL export is
// byte-deterministic under a fixed seed and the virtual clock.
//
// Every type in the package is nil-safe: methods on a nil *Registry,
// *Counter, *Gauge, *Histogram, or *Tracer are no-ops (or return zero), so
// instrumented code paths pay a single predictable branch when telemetry is
// switched off instead of threading conditionals everywhere. The hot-path
// cost of the live counters is one atomic add on a sharded cell; see
// BenchmarkCounter* for the measured numbers.
package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"unsafe"
)

// counterShards is the number of independent cells a Counter stripes its
// value across. Must be a power of two.
const counterShards = 16

// cell is one padded counter stripe. The padding keeps adjacent cells on
// separate cache lines so concurrent workers do not false-share.
type cell struct {
	n uint64
	_ [7]uint64
}

// shardIndex picks a stripe for the calling goroutine. Goroutine stacks are
// distinct allocations, so the address of a stack variable is a cheap,
// allocation-free way to spread concurrent writers across cells; perfect
// distribution is not required, only that a hot counter is not a single
// contended word.
func shardIndex() int {
	var b byte
	return int((uintptr(unsafe.Pointer(&b)) >> 10) & (counterShards - 1))
}

// Counter is a monotonically increasing sum, striped across padded cells so
// many workers can bump it with negligible contention.
type Counter struct {
	cells [counterShards]cell
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	atomic.AddUint64(&c.cells[shardIndex()].n, n)
}

// Value returns the current sum across all stripes.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.cells {
		sum += atomic.LoadUint64(&c.cells[i].n)
	}
	return sum
}

// Gauge is a float64 instantaneous value (queue depth, best score so far).
type Gauge struct {
	bits uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	atomic.StoreUint64(&g.bits, math.Float64bits(v))
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := atomic.LoadUint64(&g.bits)
		next := math.Float64bits(math.Float64frombits(old) + d)
		if atomic.CompareAndSwapUint64(&g.bits, old, next) {
			return
		}
	}
}

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&g.bits))
}

// Histogram counts observations into fixed buckets (cumulative on export,
// Prometheus-style) and tracks their sum. Observations land in the first
// bucket whose upper bound is ≥ the value; larger values land in the
// implicit +Inf bucket.
type Histogram struct {
	bounds  []float64 // sorted upper bounds
	buckets []uint64  // len(bounds)+1; last is +Inf
	sumBits uint64
	count   uint64
}

// DefSecondsBuckets suits virtual measurement costs: sub-second launches up
// through paper-scale timeouts.
var DefSecondsBuckets = []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000}

// DefLatencyBuckets suits real-time latencies (searcher proposals), in
// seconds from a microsecond up.
var DefLatencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	atomic.AddUint64(&h.buckets[i], 1)
	atomic.AddUint64(&h.count, 1)
	for {
		old := atomic.LoadUint64(&h.sumBits)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&h.sumBits, old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return atomic.LoadUint64(&h.count)
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&h.sumBits))
}

// snapshot returns the per-bucket counts (non-cumulative), their total, and
// the observation sum. The total is derived from the bucket reads so the
// exposition is always internally consistent (cumulative buckets end at the
// reported count), even when observations race the scrape.
func (h *Histogram) snapshot() (counts []uint64, sum float64, total uint64) {
	counts = make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = atomic.LoadUint64(&h.buckets[i])
		total += counts[i]
	}
	sum = math.Float64frombits(atomic.LoadUint64(&h.sumBits))
	return counts, sum, total
}
