package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	reg := New()
	c := reg.Counter("hits_total")
	const goroutines, perG = 32, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if again := reg.Counter("hits_total"); again != c {
		t.Error("re-registration should return the same counter")
	}
}

func TestGauge(t *testing.T) {
	g := New().Gauge("depth")
	g.Set(5)
	g.Inc()
	g.Dec()
	g.Add(2.5)
	if got := g.Value(); got != 7.5 {
		t.Errorf("gauge = %g, want 7.5", got)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	g := New().Gauge("g")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				g.Inc()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 8000 {
		t.Errorf("gauge = %g, want 8000", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := New().Histogram("cost_seconds", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Errorf("sum = %g, want 556.5", h.Sum())
	}
	counts, sum, total := h.snapshot()
	if total != 5 || sum != 556.5 {
		t.Errorf("snapshot total=%d sum=%g", total, sum)
	}
	// 0.5 and 1 land ≤1; 5 lands ≤10; 50 lands ≤100; 500 lands +Inf.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket[%d] = %d, want %d", i, counts[i], w)
		}
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	reg := New()
	h := reg.Histogram("h", nil)
	h.Observe(3)
	if h.Count() != 1 {
		t.Error("observation lost")
	}
	if reg.Histogram("h", []float64{42}) != h {
		t.Error("re-registration should return the same histogram")
	}
}

func TestSnapshot(t *testing.T) {
	reg := New()
	reg.Counter("c_total").Add(3)
	reg.Gauge("g").Set(1.5)
	reg.Histogram("h", []float64{1}).Observe(2)
	snap := reg.Snapshot()
	for name, want := range map[string]float64{
		"c_total": 3, "g": 1.5, "h_count": 1, "h_sum": 2,
	} {
		if snap[name] != want {
			t.Errorf("snapshot[%q] = %g, want %g", name, snap[name], want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := New()
	reg.Counter(`faults_total{kind="launch"}`).Add(2)
	reg.Counter(`faults_total{kind="hang"}`).Inc()
	reg.Gauge("queue_depth").Set(4)
	h := reg.Histogram("cost_seconds", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		"# TYPE faults_total counter\n",
		`faults_total{kind="hang"} 1` + "\n",
		`faults_total{kind="launch"} 2` + "\n",
		"# TYPE queue_depth gauge\nqueue_depth 4\n",
		"# TYPE cost_seconds histogram\n",
		`cost_seconds_bucket{le="1"} 1` + "\n",
		`cost_seconds_bucket{le="10"} 2` + "\n",
		`cost_seconds_bucket{le="+Inf"} 3` + "\n",
		"cost_seconds_sum 55.5\n",
		"cost_seconds_count 3\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
	// One TYPE line per base name, even with two labeled series.
	if strings.Count(got, "# TYPE faults_total") != 1 {
		t.Errorf("TYPE line should appear once:\n%s", got)
	}

	// Deterministic output.
	var b2 strings.Builder
	if err := reg.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != got {
		t.Error("exposition is not deterministic")
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var reg *Registry
	reg.Counter("c").Inc()
	reg.Counter("c").Add(2)
	reg.Gauge("g").Set(1)
	reg.Gauge("g").Add(1)
	reg.Histogram("h", nil).Observe(1)
	if reg.Counter("c").Value() != 0 || reg.Gauge("g").Value() != 0 ||
		reg.Histogram("h", nil).Count() != 0 || reg.Histogram("h", nil).Sum() != 0 {
		t.Error("nil registry should read as zero")
	}
	if reg.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil exposition: %v", err)
	}
}
