package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds named metrics. Lookups register on first use, so
// instrumented code just asks for the series it wants:
//
//	reg.Counter(`chaos_faults_total{kind="launch"}`).Inc()
//
// A series name is a Prometheus-style name with optional label suffix; all
// series sharing a base name (the part before '{') are exposed under one
// TYPE line. A nil *Registry is a valid no-op sink.
//
// Callers on hot paths should look a metric up once and keep the pointer:
// the returned Counter/Gauge/Histogram is lock-free to update, while the
// lookup itself takes a read lock.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter named name, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge named name, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram named name, registering it with the given
// bucket upper bounds on first use (later calls reuse the first buckets;
// nil buckets mean DefSecondsBuckets).
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if buckets == nil {
			buckets = DefSecondsBuckets
		}
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		h = &Histogram{bounds: bounds, buckets: make([]uint64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// Snapshot returns every series as a flat name→value map: counters and
// gauges by name, histograms as name_count and name_sum. It is the job
// API's per-job telemetry view.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+2*len(r.hists))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		_, sum, total := h.snapshot()
		out[name+"_count"] = float64(total)
		out[name+"_sum"] = sum
	}
	return out
}

// baseName strips a label suffix: `x_total{kind="a"}` → `x_total`.
func baseName(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// formatFloat renders a float the way Prometheus expects, deterministically.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every metric in Prometheus text format, sorted by
// series name so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	var b strings.Builder
	typed := make(map[string]bool) // base names whose TYPE line is out

	writeTyped := func(series, kind string) {
		base := baseName(series)
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, kind)
		}
	}

	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writeTyped(name, "counter")
		fmt.Fprintf(&b, "%s %d\n", name, counters[name].Value())
	}

	names = names[:0]
	for name := range gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writeTyped(name, "gauge")
		fmt.Fprintf(&b, "%s %s\n", name, formatFloat(gauges[name].Value()))
	}

	names = names[:0]
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := hists[name]
		writeTyped(name, "histogram")
		counts, sum, total := h.snapshot()
		var cum uint64
		for i, bound := range h.bounds {
			cum += counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
		fmt.Fprintf(&b, "%s_sum %s\n", name, formatFloat(sum))
		fmt.Fprintf(&b, "%s_count %d\n", name, total)
	}

	_, err := io.WriteString(w, b.String())
	return err
}
