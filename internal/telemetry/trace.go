package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Event is one typed entry in a session trace.
//
// Events never carry wall-clock timestamps or non-finite floats: T is the
// virtual clock, and every field is a pure function of the session's seed
// and inputs, which is what makes the JSONL export byte-deterministic.
type Event struct {
	// Seq is the position in the committed stream, assigned at commit time.
	Seq int `json:"seq"`
	// T is the virtual time (seconds) the event was committed at; -1 for
	// events flushed without ever being committed (standalone runner use).
	T float64 `json:"t"`
	// Kind is the event type; see the Ev* constants.
	Kind string `json:"kind"`
	// Key is the configuration key (or another stable subject id) the event
	// concerns.
	Key string `json:"key,omitempty"`
	// Attempt is the launch-attempt index for attempt/retry/fault events.
	Attempt int `json:"attempt,omitempty"`
	// Worker is the virtual evaluation slot for proposal/observe events.
	Worker int `json:"worker,omitempty"`
	// Trial is the session trial number for observe events.
	Trial int `json:"trial,omitempty"`
	// Cost is the virtual seconds the subject consumed, when known.
	Cost float64 `json:"cost,omitempty"`
	// Score is the objective score observed, when finite.
	Score float64 `json:"score,omitempty"`
	// Detail carries a kind-specific annotation (failure kind, fault name,
	// round summary).
	Detail string `json:"detail,omitempty"`
}

// The trace event kinds the engine emits.
const (
	// EvBaseline closes the default-configuration measurement.
	EvBaseline = "baseline"
	// EvProposal marks a searcher proposal being dispatched to a slot.
	EvProposal = "proposal"
	// EvAttempt is one launch attempt of a measurement (Detail: "ok" or the
	// failure kind).
	EvAttempt = "attempt"
	// EvRetry marks a transient failure being retried (Attempt is the new
	// attempt's index).
	EvRetry = "retry"
	// EvFault is a chaos-layer injection (Detail: the fault kind).
	EvFault = "fault"
	// EvCacheHit is a measurement replayed from the runner cache.
	EvCacheHit = "cache-hit"
	// EvCondemned marks a deterministic failure being cached: the
	// configuration is condemned and will never be re-measured.
	EvCondemned = "condemned"
	// EvObserve is the session delivering a measurement to the searcher.
	EvObserve = "observe"
	// EvBarrier closes one evaluation round of the batched executor.
	EvBarrier = "barrier"
	// EvHedge marks the straggler watchdog resolving a hedged trial
	// (Detail: "hedge-won" or "primary-won"; Cost: the effective charge).
	EvHedge = "hedge"
	// EvQuarantine is a failure-quarantine breaker transition or probe
	// (Detail: "open:", "close:", "reopen:", "probe:" or "skip:" plus the
	// subtree label).
	EvQuarantine = "quarantine"
	// EvPhase marks the workload shifting to a new phase at a round boundary
	// (Detail: "ph<N>|" plus the shift's canonical factors).
	EvPhase = "phase"
	// EvDrift marks the drift detector confirming a workload shift: the
	// session demotes its incumbent (Key) and opens a re-tuning epoch
	// (Detail: the new epoch and the detector statistics; Score: the
	// observation that confirmed the drift; Trial: the confirming trial).
	EvDrift = "drift"
)

// defaultTraceCap bounds the ring when NewTracer is given no capacity.
const defaultTraceCap = 1 << 14

// pendingCapPerKey bounds any one key's uncommitted event group.
const pendingCapPerKey = 256

// Tracer records session events into a bounded ring buffer.
//
// Determinism protocol: events produced on the session goroutine (proposal,
// observe, barrier) are Emitted directly, in an order the executor already
// guarantees is deterministic. Events produced inside concurrent
// Runner.Measure calls (attempts, retries, faults, cache hits) are Recorded
// into a per-key pending group — within one Measure call they are
// sequential, and the executor measures a key at most once per round — and
// the session Commits the group when it delivers that key's observation, in
// virtual-completion order. The committed stream is therefore identical for
// a fixed seed at any worker count and under any goroutine schedule.
//
// A nil *Tracer is a valid no-op sink.
type Tracer struct {
	mu      sync.Mutex
	cap     int
	buf     []Event
	head    int // oldest element when the ring is full
	seq     int
	dropped int
	pending map[string][]Event
}

// NewTracer returns a tracer holding at most capacity committed events
// (oldest dropped first); capacity ≤ 0 means the default, 16384.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = defaultTraceCap
	}
	return &Tracer{cap: capacity, pending: make(map[string][]Event)}
}

// appendLocked commits one event to the ring. t.mu must be held.
func (t *Tracer) appendLocked(ev Event) {
	ev.Seq = t.seq
	t.seq++
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, ev)
		return
	}
	t.buf[t.head] = ev
	t.head = (t.head + 1) % t.cap
	t.dropped++
}

// Emit commits ev immediately. Call only from a deterministically ordered
// context (the session goroutine); concurrent producers use Record/Commit.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.appendLocked(ev)
	t.mu.Unlock()
}

// Record appends ev to key's pending group without committing it. Safe for
// concurrent use; events from one goroutine keep their order.
func (t *Tracer) Record(key string, ev Event) {
	if t == nil {
		return
	}
	ev.Key = key
	t.mu.Lock()
	if len(t.pending[key]) < pendingCapPerKey {
		t.pending[key] = append(t.pending[key], ev)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Commit moves key's pending events into the committed stream, stamping
// each with the virtual time virtualT.
func (t *Tracer) Commit(key string, virtualT float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for _, ev := range t.pending[key] {
		ev.T = virtualT
		t.appendLocked(ev)
	}
	delete(t.pending, key)
	t.mu.Unlock()
}

// Flush commits every remaining pending group in sorted-key order, stamping
// events with T = -1 (no deterministic virtual time is known for them).
// WriteJSONL calls it automatically.
func (t *Tracer) Flush() {
	if t == nil {
		return
	}
	t.mu.Lock()
	keys := make([]string, 0, len(t.pending))
	for k := range t.pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, ev := range t.pending[k] {
			ev.T = -1
			t.appendLocked(ev)
		}
		delete(t.pending, k)
	}
	t.mu.Unlock()
}

// Events returns the committed events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.head:]...)
	out = append(out, t.buf[:t.head]...)
	return out
}

// Len returns the number of committed events currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Dropped counts events lost to the ring bound or a pending-group cap.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSONL flushes pending groups and writes every committed event as one
// JSON object per line. For a fixed seed and virtual clock the output is
// byte-identical across runs at any worker count.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.Flush()
	for _, ev := range t.Events() {
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}
