package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestTracerEmitAndEvents(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{Kind: EvBaseline, T: 1})
	tr.Emit(Event{Kind: EvBarrier, T: 2})
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Kind != EvBaseline || evs[1].Kind != EvBarrier {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Errorf("seq not assigned in order: %+v", evs)
	}
}

func TestTracerRecordCommitOrder(t *testing.T) {
	tr := NewTracer(0)
	tr.Record("a", Event{Kind: EvAttempt, Attempt: 0})
	tr.Record("a", Event{Kind: EvRetry, Attempt: 1})
	tr.Record("b", Event{Kind: EvCacheHit})
	tr.Commit("b", 10)
	tr.Commit("a", 20)
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	// b committed first, then a's two events in record order.
	if evs[0].Key != "b" || evs[0].T != 10 {
		t.Errorf("evs[0] = %+v", evs[0])
	}
	if evs[1].Kind != EvAttempt || evs[2].Kind != EvRetry || evs[2].T != 20 {
		t.Errorf("a's group out of order: %+v", evs[1:])
	}
	// Committing a key twice is harmless.
	tr.Commit("a", 30)
	if tr.Len() != 3 {
		t.Error("empty commit should add nothing")
	}
}

func TestTracerRingDropsOldest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 7; i++ {
		tr.Emit(Event{Kind: EvObserve, Trial: i})
	}
	if tr.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Trial != i+3 {
			t.Errorf("evs[%d].Trial = %d, want %d (oldest dropped first)", i, ev.Trial, i+3)
		}
	}
}

func TestTracerPendingCap(t *testing.T) {
	tr := NewTracer(0)
	for i := 0; i < pendingCapPerKey+10; i++ {
		tr.Record("k", Event{Kind: EvAttempt, Attempt: i})
	}
	tr.Commit("k", 1)
	if tr.Len() != pendingCapPerKey {
		t.Errorf("len = %d, want %d", tr.Len(), pendingCapPerKey)
	}
	if tr.Dropped() != 10 {
		t.Errorf("dropped = %d, want 10", tr.Dropped())
	}
}

func TestTracerFlushSortsKeys(t *testing.T) {
	tr := NewTracer(0)
	tr.Record("zz", Event{Kind: EvAttempt})
	tr.Record("aa", Event{Kind: EvAttempt})
	tr.Flush()
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Key != "aa" || evs[1].Key != "zz" {
		t.Errorf("flush should commit in sorted-key order: %+v", evs)
	}
	if evs[0].T != -1 {
		t.Errorf("flushed events get T = -1, got %g", evs[0].T)
	}
}

func TestTracerWriteJSONLDeterministic(t *testing.T) {
	build := func() *Tracer {
		tr := NewTracer(0)
		tr.Record("cfg-a", Event{Kind: EvAttempt, Attempt: 0, Cost: 12.5, Detail: "ok"})
		tr.Commit("cfg-a", 13)
		tr.Emit(Event{Kind: EvObserve, Key: "cfg-a", T: 13, Trial: 1, Score: 12.5})
		tr.Record("cfg-b", Event{Kind: EvFault, Detail: "launch"})
		return tr
	}
	var a, b strings.Builder
	if err := build().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("JSONL not deterministic:\n%s\n---\n%s", a.String(), b.String())
	}
	lines := strings.Split(strings.TrimSuffix(a.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d:\n%s", len(lines), a.String())
	}
	if !strings.HasPrefix(lines[0], `{"seq":0,"t":13,"kind":"attempt","key":"cfg-a"`) {
		t.Errorf("line 0 = %s", lines[0])
	}
	if !strings.Contains(lines[2], `"kind":"fault"`) || !strings.Contains(lines[2], `"t":-1`) {
		t.Errorf("uncommitted event should flush with t=-1: %s", lines[2])
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		key := strings.Repeat("k", g+1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Record(key, Event{Kind: EvAttempt, Attempt: i})
			}
		}()
	}
	wg.Wait()
	tr.Flush()
	if tr.Len() != 800 {
		t.Errorf("len = %d, want 800", tr.Len())
	}
	// Per-key record order survives concurrency.
	last := map[string]int{}
	for _, ev := range tr.Events() {
		if prev, ok := last[ev.Key]; ok && ev.Attempt != prev+1 {
			t.Fatalf("key %q out of order: %d after %d", ev.Key, ev.Attempt, prev)
		}
		last[ev.Key] = ev.Attempt
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: EvObserve})
	tr.Record("k", Event{Kind: EvAttempt})
	tr.Commit("k", 1)
	tr.Flush()
	if tr.Events() != nil || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer should read as empty")
	}
	if err := tr.WriteJSONL(&strings.Builder{}); err != nil {
		t.Errorf("nil WriteJSONL: %v", err)
	}
}
