package transfer

import (
	"fmt"
	"testing"

	"repro/internal/workload"
)

// BenchmarkFingerprint is the per-session cost of deriving a workload's
// feature vector — it runs once per tuning session, so it only has to stay
// trivially cheap.
func BenchmarkFingerprint(b *testing.B) {
	p := workload.All()[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = FingerprintOf(p)
	}
}

// BenchmarkStoreLookup is the warm-start query against a populated store:
// group, rank, and return the nearest fingerprints. Runs once per session
// over an in-memory entry list (the disk was paid at Open).
func BenchmarkStoreLookup(b *testing.B) {
	dir := b.TempDir()
	st, err := Open(dir, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	for _, kind := range workload.GenKinds() {
		for seed := int64(0); seed < 64; seed++ {
			p, err := workload.Generate(kind, seed)
			if err != nil {
				b.Fatal(err)
			}
			e := &Entry{
				FP:            FingerprintOf(p),
				Workload:      p.Name,
				Searcher:      "surrogate",
				Objective:     "throughput",
				Args:          []string{"-XX:+UseG1GC", fmt.Sprintf("-XX:MaxGCPauseMillis=%d", 10+seed)},
				Score:         15,
				BaselineScore: 20,
			}
			if err := st.Append(e); err != nil {
				b.Fatal(err)
			}
		}
	}
	target := workload.All()[0]
	fp := FingerprintOf(target)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if nbs := st.Nearest(fp, 3); len(nbs) != 3 {
			b.Fatal("lookup returned wrong k")
		}
	}
}
