// Package transfer is the tuner's cross-workload knowledge base: a durable
// store of what previous tuning sessions learned, indexed by a behavioural
// fingerprint of the workload, plus the warm-start machinery that turns
// stored results into search priors for a new session.
//
// The paper tunes every workload from scratch; OneStopTuner and the
// multiple-phase-learning line of work show that a search seeded with the
// winners of *similar* workloads reaches the same score in a fraction of the
// budget. This package supplies the three missing pieces:
//
//   - Fingerprint: a deterministic, versioned feature vector derived from a
//     workload.Profile, with a documented weighted distance metric, so
//     "similar workload" is a number rather than a vibe.
//   - Store: an append-only, CRC-framed, crash-safe on-disk store of
//     (fingerprint, best flag configuration, score) records in the
//     internal/checkpoint house style — fsynced appends, salvaged-tail
//     recovery, atomic temp+rename compaction behind a sequence watermark.
//   - Priors: nearest-fingerprint lookup plus validation/repair of stored
//     configurations against the current flag registry, producing the
//     ready-to-inject warm-start proposals core.WarmStart consumes.
//
// Store writes happen only on the tuning controller (never on evald
// measurement nodes), and a session with transfer disabled takes no code
// path through this package at all — which is what keeps fixed-seed
// sessions byte-identical with transfer off, in-process or distributed.
// See docs/TRANSFER.md.
package transfer

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/workload"
)

// FingerprintVersion is the current fingerprint schema version. Distances
// across versions are undefined (the feature list changed), so Nearest
// treats entries with a different version as infinitely far — old store
// records degrade to "no neighbour", never to a wrong one.
const FingerprintVersion = 1

// feature is one dimension of the fingerprint: a name (stable, documented
// in docs/TRANSFER.md), a distance weight, and the extraction from a
// profile. Extractions normalize into roughly [0,1] — fractions pass
// through, unbounded magnitudes are log-compressed over their plausible
// range — so the weights, not the units, decide what similarity means.
type feature struct {
	name    string
	weight  float64
	extract func(p *workload.Profile) float64
}

// log01 compresses v ≥ 0 into [0,1] given the log10 span of its plausible
// range: log01(v, s) = log10(1+v)/s, clamped at 1.
func log01(v, span float64) float64 {
	if v < 0 {
		v = 0
	}
	x := math.Log10(1+v) / span
	if x > 1 {
		return 1
	}
	return x
}

// features is the fingerprint schema: order defines vector indices, so new
// features append and bump FingerprintVersion. GC-pressure features (the
// allocation rate, live-set shape, and object-lifetime profile that decide
// collector and heap-geometry flags) carry the heaviest weights; JIT-shape
// features sit in the middle; second-order intensities trail.
var features = []feature{
	{"base_seconds", 1.0, func(p *workload.Profile) float64 { return log01(p.BaseSeconds, 2) }},
	{"startup_fraction", 1.0, func(p *workload.Profile) float64 { return p.StartupFraction }},
	{"warmup_frac", 1.0, func(p *workload.Profile) float64 {
		if p.BaseSeconds <= 0 {
			return 0
		}
		x := p.WarmupWork / p.BaseSeconds
		if x > 1 {
			return 1
		}
		return x
	}},
	{"hot_methods", 0.5, func(p *workload.Profile) float64 { return log01(float64(p.HotMethods), 4) }},
	{"code_kb_per_method", 0.25, func(p *workload.Profile) float64 { return p.CodeKBPerMethod / 3 }},
	{"call_intensity", 0.5, func(p *workload.Profile) float64 { return p.CallIntensity }},
	{"loop_intensity", 0.5, func(p *workload.Profile) float64 { return p.LoopIntensity }},
	{"escape_frac", 0.25, func(p *workload.Profile) float64 { return p.EscapeFrac }},
	{"alloc_rate_mbps", 1.5, func(p *workload.Profile) float64 { return log01(p.AllocRateMBps, 2.5) }},
	{"live_set_mb", 1.5, func(p *workload.Profile) float64 { return log01(p.LiveSetMB, 2.5) }},
	{"class_meta_mb", 0.75, func(p *workload.Profile) float64 { return log01(p.ClassMetaMB, 2) }},
	{"short_lived_frac", 1.25, func(p *workload.Profile) float64 { return p.ShortLivedFrac }},
	{"mid_lived_frac", 1.0, func(p *workload.Profile) float64 { return p.MidLivedFrac }},
	{"mid_life_rounds", 0.5, func(p *workload.Profile) float64 { return p.MidLifeRounds / 8 }},
	{"eden_half_life_mb", 0.75, func(p *workload.Profile) float64 { return log01(p.EdenHalfLifeMB, 2.5) }},
	{"large_object_frac", 0.5, func(p *workload.Profile) float64 { return p.LargeObjectFrac }},
	{"pointer_intensity", 0.5, func(p *workload.Profile) float64 { return p.PointerIntensity }},
	{"ref_intensity", 0.25, func(p *workload.Profile) float64 { return p.RefIntensity }},
	{"string_intensity", 0.25, func(p *workload.Profile) float64 { return p.StringIntensity }},
	{"sync_intensity", 0.5, func(p *workload.Profile) float64 { return p.SyncIntensity }},
	{"lock_contention", 0.5, func(p *workload.Profile) float64 { return p.LockContention }},
	{"app_threads", 0.75, func(p *workload.Profile) float64 { return log01(float64(p.AppThreads), 1.5) }},
	{"explicit_gc_calls", 0.5, func(p *workload.Profile) float64 {
		x := float64(p.ExplicitGCCalls) / 10
		if x > 1 {
			return 1
		}
		return x
	}},
}

// FeatureNames returns the fingerprint dimensions in vector order — the
// schema the docs and the workload guard tests pin down.
func FeatureNames() []string {
	out := make([]string, len(features))
	for i, f := range features {
		out[i] = f.name
	}
	return out
}

// Fingerprint is a workload's behavioural feature vector. Equal profiles
// produce equal fingerprints (the extraction is pure arithmetic over the
// profile's value fields), which is what makes fingerprinting of generated
// workloads deterministic under a fixed generator seed.
type Fingerprint struct {
	// Version is the schema revision that produced F.
	Version int `json:"v"`
	// F holds one normalized value per feature, in FeatureNames order.
	F []float64 `json:"f"`
}

// FingerprintOf derives the profile's fingerprint under the current schema.
func FingerprintOf(p *workload.Profile) Fingerprint {
	fp := Fingerprint{Version: FingerprintVersion, F: make([]float64, len(features))}
	for i, f := range features {
		fp.F[i] = f.extract(p)
	}
	return fp
}

// Key renders the fingerprint as a compact stable string, used to group
// store entries that describe the same workload behaviour.
func (fp Fingerprint) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d:", fp.Version)
	for i, v := range fp.F {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(v, 'g', 9, 64))
	}
	return b.String()
}

// Distance is the similarity metric between two fingerprints: the weighted
// root-mean-square difference over the feature vector,
//
//	d(a,b) = sqrt( Σᵢ wᵢ·(aᵢ−bᵢ)² / Σᵢ wᵢ )
//
// with the weights of the features table. Because every feature is
// normalized into [0,1], d is roughly in [0,1] too: 0 is an identical
// behavioural profile, and anything past ~0.3 is a genuinely different kind
// of workload. Fingerprints from different schema versions (or malformed
// vectors) are incomparable and return +Inf, so corrupted or outdated store
// entries can never rank as a nearest neighbour.
func (fp Fingerprint) Distance(o Fingerprint) float64 {
	if fp.Version != o.Version || len(fp.F) != len(features) || len(o.F) != len(features) {
		return math.Inf(1)
	}
	var num, den float64
	for i, f := range features {
		d := fp.F[i] - o.F[i]
		num += f.weight * d * d
		den += f.weight
	}
	return math.Sqrt(num / den)
}
