package transfer

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestFingerprintDeterministic(t *testing.T) {
	for _, name := range workload.Names() {
		p, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("%s: not found", name)
		}
		a, b := FingerprintOf(p), FingerprintOf(p)
		if a.Key() != b.Key() {
			t.Fatalf("%s: fingerprint not deterministic: %q vs %q", name, a.Key(), b.Key())
		}
		if a.Version != FingerprintVersion || len(a.F) != len(FeatureNames()) {
			t.Fatalf("%s: fingerprint shape %d/%d", name, a.Version, len(a.F))
		}
	}
}

func TestFingerprintValuesBounded(t *testing.T) {
	check := func(name string, p *workload.Profile) {
		fp := FingerprintOf(p)
		for i, v := range fp.F {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1.0001 {
				t.Errorf("%s: feature %s = %v out of [0,1]", name, FeatureNames()[i], v)
			}
		}
	}
	for _, p := range workload.All() {
		check(p.Name, p)
	}
	for _, kind := range workload.GenKinds() {
		for seed := int64(0); seed < 20; seed++ {
			p, err := workload.Generate(kind, seed)
			if err != nil {
				t.Fatal(err)
			}
			check(p.Name, p)
		}
	}
}

func TestFingerprintDistance(t *testing.T) {
	all := workload.All()
	a := FingerprintOf(all[0])
	b := FingerprintOf(all[len(all)-1])
	if d := a.Distance(a); d != 0 {
		t.Fatalf("self-distance = %v, want 0", d)
	}
	if d1, d2 := a.Distance(b), b.Distance(a); d1 != d2 {
		t.Fatalf("distance not symmetric: %v vs %v", d1, d2)
	}
	if d := a.Distance(b); d <= 0 || d > 1.5 {
		t.Fatalf("cross-workload distance = %v, want in (0, 1.5]", d)
	}

	// Across schema versions the metric is undefined: +Inf, never a guess.
	old := b
	old.Version = FingerprintVersion + 1
	if d := a.Distance(old); !math.IsInf(d, 1) {
		t.Fatalf("cross-version distance = %v, want +Inf", d)
	}
	short := Fingerprint{Version: FingerprintVersion, F: []float64{0.5}}
	if d := a.Distance(short); !math.IsInf(d, 1) {
		t.Fatalf("malformed-vector distance = %v, want +Inf", d)
	}
}

// TestFingerprintSeparatesFamilies checks the metric does its one job:
// same-family generated workloads sit closer to each other than to a
// different family's profiles.
func TestFingerprintSeparatesFamilies(t *testing.T) {
	server1, err := workload.Generate(workload.GenServer, 1)
	if err != nil {
		t.Fatal(err)
	}
	server2, err := workload.Generate(workload.GenServer, 2)
	if err != nil {
		t.Fatal(err)
	}
	startup, err := workload.Generate(workload.GenStartup, 1)
	if err != nil {
		t.Fatal(err)
	}
	fs1, fs2, fst := FingerprintOf(server1), FingerprintOf(server2), FingerprintOf(startup)
	within := fs1.Distance(fs2)
	across := fs1.Distance(fst)
	if within >= across {
		t.Fatalf("within-family distance %v not below cross-family %v", within, across)
	}
}

func TestFeatureNamesUniqueAndStable(t *testing.T) {
	names := FeatureNames()
	seen := make(map[string]bool)
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
	// The schema is load-bearing for on-disk compatibility: index 0 and the
	// vector length may only change together with FingerprintVersion.
	if names[0] != "base_seconds" || len(names) != 23 {
		t.Fatalf("fingerprint schema drifted (first=%q, len=%d) — bump FingerprintVersion", names[0], len(names))
	}
}
