package transfer

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreOpen feeds arbitrary bytes to the store recovery path. The
// contract under test is the warm-start degradation guarantee: a bogus
// store file leaves the session at a cold start, never a panic. Open must
// either (a) accept the file — possibly after moving a non-store aside or
// salvaging a torn tail — and come back usable (appends land, a reopen
// replays them), or (b) reject it with ErrFutureVersion, the one
// fail-closed case, leaving the file untouched.
func FuzzStoreOpen(f *testing.F) {
	var valid bytes.Buffer
	if err := writeHeader(&valid); err != nil {
		f.Fatal(err)
	}
	headerOnly := append([]byte(nil), valid.Bytes()...)
	for _, p := range []string{
		`{"kind":"entry","entry":{"seq":0,"fp":{"v":1,"f":[0.5]},"workload":"h2","searcher":"random","objective":"throughput","args":["-XX:+UseG1GC"],"score":12,"baseline_score":20}}`,
		`{"kind":"mark","next_seq":7}`,
	} {
		if err := writeRecord(&valid, []byte(p)); err != nil {
			f.Fatal(err)
		}
	}

	badCRC := append([]byte(nil), valid.Bytes()...)
	badCRC[len(badCRC)-1] ^= 0xFF

	future := append([]byte(nil), headerOnly...)
	future[4] = StoreVersion + 1

	f.Add([]byte{})
	f.Add(headerOnly)
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()-5]) // torn tail
	f.Add(badCRC)
	f.Add(future)
	f.Add([]byte("garbage that is definitely not a store"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, storeFile)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, nil)
		if err != nil {
			if !errors.Is(err, ErrFutureVersion) {
				t.Fatalf("open error is not ErrFutureVersion: %v", err)
			}
			after, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatal(rerr)
			}
			if !bytes.Equal(after, data) {
				t.Fatal("future-version store was modified on disk")
			}
			return
		}
		n := st.Len()
		probe := &Entry{Workload: "probe", Args: []string{"-XX:+UseG1GC"}, Score: 1, BaselineScore: 2}
		if err := st.Append(probe); err != nil {
			t.Fatalf("append to accepted store: %v", err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		st2, err := Open(dir, nil)
		if err != nil {
			t.Fatalf("reopen after salvage: %v", err)
		}
		defer st2.Close()
		ents := st2.Entries()
		if len(ents) != n+1 || ents[len(ents)-1].Workload != "probe" {
			t.Fatalf("reopen replayed %d entries, want %d plus probe", len(ents), n+1)
		}
	})
}
