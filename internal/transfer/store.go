package transfer

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/telemetry"
)

// StoreVersion is the on-disk format version written by this build; readers
// reject anything newer (fail closed — a future format may carry fields this
// build would silently drop, and overwriting a newer store would destroy a
// newer build's knowledge).
const StoreVersion = 1

// storeMagic opens every transfer store file. It differs from the
// checkpoint magic so a store can never be mistaken for a journal (or vice
// versa) by a misconfigured path.
const storeMagic = "ATTS"

// storeFile is the store's file name inside the -transfer-dir directory.
const storeFile = "transfer.store"

// headerSize is the byte length of the file header (magic + version).
const headerSize = 8

// recordHeaderSize is the byte length of each record's frame (length + CRC).
const recordHeaderSize = 8

// maxRecordBytes bounds a single record. A real entry is a fingerprint plus
// a flag argv — a few kilobytes; anything claiming more is a garbled length
// field, and failing here keeps a corrupt file from turning into a
// multi-gigabyte allocation.
const maxRecordBytes = 1 << 28

// compactBytes is the size past which Append considers compacting. The
// store grows one small record per completed session, so compaction is
// rare; the 2×-since-last-compaction rule keeps its cost amortized O(1)
// per append even for long-lived stores.
const compactBytes = 1 << 20

// Sentinel decode errors, matched with errors.Is.
var (
	// ErrCorrupt marks unreadable on-disk state: bad magic, torn records,
	// CRC mismatches, implausible lengths, undecodable entries.
	ErrCorrupt = errors.New("transfer: corrupt store")
	// ErrFutureVersion marks a store written by a newer format revision.
	ErrFutureVersion = errors.New("transfer: future store version")
)

// Entry is one unit of tuning knowledge: the best configuration a completed
// session found for a fingerprinted workload, with enough provenance to
// judge and reproduce it. Args is the configuration as ExplicitArgs — the
// rendered command-line form survives registry generations, unlike interned
// flag IDs, and is re-parsed (and repaired) against the live registry at
// warm-start time.
//
// Entries deliberately carry no wall-clock timestamp: the store feeds
// deterministic fixed-seed sessions, and Seq already orders entries by
// arrival.
type Entry struct {
	// Seq is the store-assigned append sequence number, unique per store.
	Seq int64 `json:"seq"`
	// FP is the workload's fingerprint at the time of tuning.
	FP Fingerprint `json:"fp"`
	// Workload and Suite identify the tuned profile for humans.
	Workload string `json:"workload"`
	Suite    string `json:"suite,omitempty"`
	// Searcher, Objective, Seed, Reps, Trials and BudgetSeconds are the
	// session provenance: how this result was obtained.
	Searcher      string  `json:"searcher"`
	Objective     string  `json:"objective"`
	Seed          int64   `json:"seed"`
	Reps          int     `json:"reps"`
	Trials        int     `json:"trials"`
	BudgetSeconds float64 `json:"budget_seconds"`
	// Args is the winning configuration as explicit command-line
	// assignments (flags.Config.ExplicitArgs).
	Args []string `json:"args"`
	// Score is the winning objective value; BaselineScore is the default
	// configuration's value under the same session, so Score/BaselineScore
	// compares entries across workloads of different absolute cost.
	Score         float64 `json:"score"`
	BaselineScore float64 `json:"baseline_score"`
}

// relScore is the scale-free goodness used to rank entries within a
// fingerprint group: objective score normalized by the session's baseline.
// Lower is better (the objective is minimized).
func (e *Entry) relScore() float64 {
	if e.BaselineScore > 0 {
		return e.Score / e.BaselineScore
	}
	return e.Score
}

// storeRecord is the JSON payload inside each CRC frame. Kind "entry"
// carries an Entry; kind "mark" is the compaction watermark recording the
// next sequence number, so sequence numbers stay unique across compactions
// that drop the highest-numbered entries.
type storeRecord struct {
	Kind    string `json:"kind"`
	Entry   *Entry `json:"entry,omitempty"`
	NextSeq int64  `json:"next_seq,omitempty"`
}

// Store is the persistent cross-workload knowledge base: an append-only,
// CRC-framed record file in the checkpoint house style. Appends are fsynced
// before returning, so an entry the caller saw accepted survives a crash;
// recovery is forgiving about the tail (a crash mid-append salvages the
// valid prefix) and strict about the head. Compaction keeps only the best
// entry per (fingerprint, configuration) and rewrites the file atomically
// via temp+rename behind a sequence watermark.
type Store struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	size    int64 // bytes of valid store (header + records)
	lastCmp int64 // size after the most recent compaction (or open)
	entries []*Entry
	nextSeq int64
	closed  bool
	tel     *telemetry.Registry
}

// Neighbor is one nearest-fingerprint lookup result.
type Neighbor struct {
	Entry    *Entry
	Distance float64
}

// writeHeader emits the file header: magic then version, little-endian.
func writeHeader(w io.Writer) error {
	var h [headerSize]byte
	copy(h[:4], storeMagic)
	binary.LittleEndian.PutUint32(h[4:], StoreVersion)
	_, err := w.Write(h[:])
	return err
}

// readHeader validates the header and returns the file's format version.
func readHeader(r io.Reader) (uint32, error) {
	var h [headerSize]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if string(h[:4]) != storeMagic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrCorrupt, h[:4])
	}
	v := binary.LittleEndian.Uint32(h[4:])
	if v == 0 {
		return 0, fmt.Errorf("%w: version 0", ErrCorrupt)
	}
	if v > StoreVersion {
		return v, fmt.Errorf("%w: %d (this build reads up to %d)", ErrFutureVersion, v, StoreVersion)
	}
	return v, nil
}

// writeRecord frames one payload: length, CRC32 (IEEE) of the payload, then
// the payload itself.
func writeRecord(w io.Writer, payload []byte) error {
	var h [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(h[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(h[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readRecord reads the next framed payload. A clean end of stream returns
// io.EOF; a torn header, truncated payload, implausible length, or CRC
// mismatch returns an error wrapping ErrCorrupt, which Open treats as "the
// valid prefix ends here".
func readRecord(r io.Reader) ([]byte, error) {
	var h [recordHeaderSize]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: torn record header", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(h[:4])
	if n > maxRecordBytes {
		return nil, fmt.Errorf("%w: implausible record length %d", ErrCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated record (want %d bytes)", ErrCorrupt, n)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(h[4:]); got != want {
		return nil, fmt.Errorf("%w: record CRC mismatch (got %08x, want %08x)", ErrCorrupt, got, want)
	}
	return payload, nil
}

// decodeRecord parses one framed payload into a storeRecord, failing closed
// on anything malformed. DisallowUnknownFields is deliberately absent: an
// older build reading a same-version record with extra fields should keep
// the fields it knows, and genuinely incompatible changes bump StoreVersion.
func decodeRecord(payload []byte) (*storeRecord, error) {
	var rec storeRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("%w: undecodable record: %v", ErrCorrupt, err)
	}
	switch rec.Kind {
	case "entry":
		if rec.Entry == nil {
			return nil, fmt.Errorf("%w: entry record without entry", ErrCorrupt)
		}
	case "mark":
		if rec.NextSeq < 0 {
			return nil, fmt.Errorf("%w: mark with negative next_seq", ErrCorrupt)
		}
	default:
		return nil, fmt.Errorf("%w: unknown record kind %q", ErrCorrupt, rec.Kind)
	}
	return &rec, nil
}

// Open opens (or creates) the transfer store under dir and replays it.
//
// Recovery policy, in order of severity:
//   - empty file → initialize a fresh header;
//   - torn or corrupt tail (crash mid-append) → truncate back to the valid
//     prefix, count transfer_store_salvaged_total, continue;
//   - corrupt header or first-record garbage that makes the file "not a
//     store at all" → the file is renamed aside to <name>.corrupt
//     (preserving the bytes for inspection) and a fresh store starts,
//     counting transfer_store_corrupt_total — a bogus store degrades the
//     session to a cold start, it never aborts it;
//   - future version → ErrFutureVersion. This is the one fail-closed case
//     with no recovery: the file is fine, this build is just too old to be
//     trusted with it, and renaming it aside would destroy newer knowledge.
func Open(dir string, tel *telemetry.Registry) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("transfer: %w", err)
	}
	path := filepath.Join(dir, storeFile)
	// A crash mid-compaction can strand a temp file next to the store; it
	// was never renamed, so it holds no authoritative state — sweep it.
	if stale, _ := filepath.Glob(path + ".compact*"); len(stale) > 0 {
		for _, p := range stale {
			os.Remove(p)
		}
		tel.Counter("transfer_store_stale_temps_removed_total").Add(uint64(len(stale)))
	}

	st, err := open(path, tel)
	if err == nil {
		return st, nil
	}
	if errors.Is(err, ErrFutureVersion) {
		return nil, err
	}
	if !errors.Is(err, ErrCorrupt) {
		return nil, err
	}
	// Head corruption: not a store. Preserve the bytes and start fresh.
	if rerr := os.Rename(path, path+".corrupt"); rerr != nil {
		return nil, fmt.Errorf("transfer: move corrupt store aside: %w", rerr)
	}
	tel.Counter("transfer_store_corrupt_total").Inc()
	return open(path, tel)
}

// open does one open-and-replay attempt against path.
func open(path string, tel *telemetry.Registry) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("transfer: %w", err)
	}
	s := &Store{f: f, path: path, tel: tel}

	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("transfer: %w", err)
	}
	if fi.Size() == 0 {
		if err := writeHeader(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("transfer: init header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("transfer: init sync: %w", err)
		}
		s.size = headerSize
		s.lastCmp = s.size
		return s, nil
	}

	if _, err := readHeader(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("transfer store %s: %w", path, err)
	}

	valid := int64(headerSize) // byte offset of the end of the valid prefix
	for {
		payload, err := readRecord(f)
		if err == io.EOF {
			break
		}
		if err == nil {
			var rec *storeRecord
			rec, err = decodeRecord(payload)
			if err == nil {
				switch rec.Kind {
				case "entry":
					s.entries = append(s.entries, rec.Entry)
					if rec.Entry.Seq >= s.nextSeq {
						s.nextSeq = rec.Entry.Seq + 1
					}
				case "mark":
					if rec.NextSeq > s.nextSeq {
						s.nextSeq = rec.NextSeq
					}
				}
				valid += recordHeaderSize + int64(len(payload))
				continue
			}
		}
		if !errors.Is(err, ErrCorrupt) {
			f.Close()
			return nil, fmt.Errorf("transfer store %s: %w", path, err)
		}
		// Torn tail from a crash mid-append: salvage the valid prefix.
		if terr := f.Truncate(valid); terr != nil {
			f.Close()
			return nil, fmt.Errorf("transfer store %s: truncate corrupt tail: %w", path, terr)
		}
		if serr := f.Sync(); serr != nil {
			f.Close()
			return nil, fmt.Errorf("transfer store %s: sync after truncate: %w", path, serr)
		}
		tel.Counter("transfer_store_salvaged_total").Inc()
		break
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("transfer store %s: seek: %w", path, err)
	}
	s.size = valid
	s.lastCmp = valid
	tel.Counter("transfer_store_entries_replayed_total").Add(uint64(len(s.entries)))
	return s, nil
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Entries returns a copy of the live entry list in sequence order.
func (s *Store) Entries() []*Entry {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Entry, len(s.entries))
	copy(out, s.entries)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Append durably records one entry: the store assigns its sequence number,
// frames and fsyncs the record, then opportunistically compacts once the
// file has outgrown both the compaction floor and twice its size at the
// last compaction.
func (s *Store) Append(e *Entry) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("transfer: store closed")
	}
	cp := *e
	cp.Seq = s.nextSeq
	payload, err := json.Marshal(&storeRecord{Kind: "entry", Entry: &cp})
	if err != nil {
		return fmt.Errorf("transfer: encode entry: %w", err)
	}
	if err := writeRecord(s.f, payload); err != nil {
		return fmt.Errorf("transfer: append: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("transfer: append sync: %w", err)
	}
	s.nextSeq++
	s.size += recordHeaderSize + int64(len(payload))
	s.entries = append(s.entries, &cp)
	s.tel.Counter("transfer_store_appends_total").Inc()
	if s.size > compactBytes && s.size > 2*s.lastCmp {
		return s.compactLocked()
	}
	return nil
}

// Compact rewrites the store keeping only the best entry per
// (fingerprint, configuration) group, atomically via temp+rename. A mark
// record carrying the next sequence number is written first, so sequence
// assignment survives even when compaction drops the highest-numbered
// entries.
func (s *Store) Compact() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("transfer: store closed")
	}
	return s.compactLocked()
}

// compactLocked is Compact with s.mu held.
func (s *Store) compactLocked() error {
	// Keep the best (lowest relScore, ties to the earliest Seq) entry for
	// each distinct (fingerprint, configuration) pair. Iterating in Seq
	// order makes "first wins on tie" fall out of the strict < comparison.
	ordered := make([]*Entry, len(s.entries))
	copy(ordered, s.entries)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Seq < ordered[j].Seq })
	best := make(map[string]*Entry)
	var keys []string
	for _, e := range ordered {
		k := e.FP.Key() + "|" + fmt.Sprint(e.Args)
		if cur, ok := best[k]; !ok {
			best[k] = e
			keys = append(keys, k)
		} else if e.relScore() < cur.relScore() {
			best[k] = e
		}
	}

	f, err := os.CreateTemp(filepath.Dir(s.path), filepath.Base(s.path)+".compact*")
	if err != nil {
		return fmt.Errorf("transfer: compact: %w", err)
	}
	tmp := f.Name()
	abort := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := writeHeader(f); err != nil {
		return abort(fmt.Errorf("transfer: compact header: %w", err))
	}
	size := int64(headerSize)
	write := func(rec *storeRecord) error {
		payload, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("transfer: compact encode: %w", err)
		}
		if err := writeRecord(f, payload); err != nil {
			return fmt.Errorf("transfer: compact record: %w", err)
		}
		size += recordHeaderSize + int64(len(payload))
		return nil
	}
	// The watermark leads: a reader of the compacted store learns the next
	// sequence number before any entry, so a store compacted down to zero
	// entries still never reissues a sequence number.
	if err := write(&storeRecord{Kind: "mark", NextSeq: s.nextSeq}); err != nil {
		return abort(err)
	}
	kept := make([]*Entry, 0, len(best))
	for _, k := range keys {
		e := best[k]
		if err := write(&storeRecord{Kind: "entry", Entry: e}); err != nil {
			return abort(err)
		}
		kept = append(kept, e)
	}
	if err := f.Sync(); err != nil {
		return abort(fmt.Errorf("transfer: compact sync: %w", err))
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return abort(fmt.Errorf("transfer: compact: %w", err))
	}
	// The temp fd is now the store: positioned at its end, ready for
	// appends. Close the superseded file only after the swap is in place.
	old := s.f
	s.f = f
	s.size = size
	s.lastCmp = size
	s.entries = kept
	old.Close()
	s.tel.Counter("transfer_store_compactions_total").Inc()
	return nil
}

// Nearest returns the k nearest distinct fingerprint groups to fp, each
// represented by its best entry (lowest baseline-relative score, ties to
// the earliest sequence number). Results are ordered by distance, with
// workload name then sequence number as deterministic tie-breaks; entries
// at infinite distance (other fingerprint versions) are excluded. k ≤ 0
// defaults to 3.
func (s *Store) Nearest(fp Fingerprint, k int) []Neighbor {
	if s == nil {
		return nil
	}
	if k <= 0 {
		k = 3
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	ordered := make([]*Entry, len(s.entries))
	copy(ordered, s.entries)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Seq < ordered[j].Seq })
	best := make(map[string]*Entry)
	var keys []string
	for _, e := range ordered {
		k := e.FP.Key()
		if cur, ok := best[k]; !ok {
			best[k] = e
			keys = append(keys, k)
		} else if e.relScore() < cur.relScore() {
			best[k] = e
		}
	}

	out := make([]Neighbor, 0, len(keys))
	for _, key := range keys {
		e := best[key]
		d := fp.Distance(e.FP)
		if math.IsInf(d, 1) {
			continue
		}
		out = append(out, Neighbor{Entry: e, Distance: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		if out[i].Entry.Workload != out[j].Entry.Workload {
			return out[i].Entry.Workload < out[j].Entry.Workload
		}
		return out[i].Entry.Seq < out[j].Entry.Seq
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Close closes the store; later Appends fail.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}
