package transfer

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/workload"
)

func testEntry(t *testing.T, name string, score float64, args ...string) *Entry {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		all := workload.All()
		p = all[0]
	}
	return &Entry{
		FP:            FingerprintOf(p),
		Workload:      p.Name,
		Suite:         p.Suite,
		Searcher:      "surrogate",
		Objective:     "throughput",
		Seed:          42,
		Reps:          3,
		Trials:        100,
		BudgetSeconds: 1200,
		Args:          args,
		Score:         score,
		BaselineScore: 20,
	}
}

func TestStoreAppendReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := workload.Names()
	for i, n := range names[:3] {
		if err := st.Append(testEntry(t, n, float64(10+i), "-XX:+UseG1GC")); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 3 {
		t.Fatalf("Len = %d, want 3", st.Len())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got := st2.Entries()
	if len(got) != 3 {
		t.Fatalf("reopen replayed %d entries, want 3", len(got))
	}
	for i, e := range got {
		if e.Seq != int64(i) {
			t.Fatalf("entry %d has Seq %d", i, e.Seq)
		}
		if e.Workload != names[i] || len(e.Args) != 1 {
			t.Fatalf("entry %d round-trip mismatch: %+v", i, e)
		}
	}
	// Sequence numbering continues where the previous generation stopped.
	if err := st2.Append(testEntry(t, names[3], 9)); err != nil {
		t.Fatal(err)
	}
	if e := st2.Entries()[3]; e.Seq != 3 {
		t.Fatalf("post-reopen Seq = %d, want 3", e.Seq)
	}
}

func TestStoreSalvagesTornTail(t *testing.T) {
	dir := t.TempDir()
	tel := telemetry.New()
	st, err := Open(dir, tel)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Append(testEntry(t, workload.Names()[i], float64(i+10))); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// A crash mid-append leaves a torn final record: chop bytes off the tail.
	path := filepath.Join(dir, storeFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, tel)
	if err != nil {
		t.Fatalf("open after torn tail: %v", err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("salvaged %d entries, want 2", st2.Len())
	}
	if tel.Counter("transfer_store_salvaged_total").Value() != 1 {
		t.Fatal("salvage not counted")
	}
	// The salvaged store accepts appends, and the next sequence number does
	// not collide with the truncated record's.
	if err := st2.Append(testEntry(t, workload.Names()[4], 8)); err != nil {
		t.Fatal(err)
	}
	ents := st2.Entries()
	if ents[len(ents)-1].Seq != 2 {
		t.Fatalf("post-salvage Seq = %d, want 2", ents[len(ents)-1].Seq)
	}
}

func TestStoreCorruptHeaderMovedAside(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, storeFile)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("this is not a transfer store at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	st, err := Open(dir, tel)
	if err != nil {
		t.Fatalf("corrupt store should degrade to fresh, got %v", err)
	}
	defer st.Close()
	if st.Len() != 0 {
		t.Fatalf("fresh store has %d entries", st.Len())
	}
	if tel.Counter("transfer_store_corrupt_total").Value() != 1 {
		t.Fatal("corruption not counted")
	}
	// The bogus bytes are preserved for inspection, not destroyed.
	kept, err := os.ReadFile(path + ".corrupt")
	if err != nil || string(kept) != "this is not a transfer store at all" {
		t.Fatalf("original bytes not preserved: %v %q", err, kept)
	}
}

func TestStoreFutureVersionFailsClosed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, storeFile)
	var buf bytes.Buffer
	buf.WriteString(storeMagic)
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], StoreVersion+1)
	buf.Write(v[:])
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, nil)
	if !errors.Is(err, ErrFutureVersion) {
		t.Fatalf("err = %v, want ErrFutureVersion", err)
	}
	// Fail closed means the newer build's file is untouched.
	after, rerr := os.ReadFile(path)
	if rerr != nil || !bytes.Equal(after, buf.Bytes()) {
		t.Fatalf("future-version store was modified: %v", rerr)
	}
}

func TestStoreCompact(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same fingerprint + same config, improving scores: compaction keeps
	// only the best. A second config under the same fingerprint survives.
	n := workload.Names()[0]
	for _, sc := range []float64{15, 12, 18} {
		if err := st.Append(testEntry(t, n, sc, "-XX:+UseG1GC")); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Append(testEntry(t, n, 14, "-XX:+UseParallelGC")); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatalf("compacted to %d entries, want 2", st.Len())
	}
	// The watermark keeps sequence numbers unique across the rewrite.
	if err := st.Append(testEntry(t, n, 11, "-XX:+UseSerialGC")); err != nil {
		t.Fatal(err)
	}
	ents := st.Entries()
	if last := ents[len(ents)-1].Seq; last != 4 {
		t.Fatalf("post-compaction Seq = %d, want 4", last)
	}
	st.Close()

	st2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 3 {
		t.Fatalf("reopen after compaction: %d entries, want 3", st2.Len())
	}
	var bestG1 *Entry
	for _, e := range st2.Entries() {
		if len(e.Args) == 1 && e.Args[0] == "-XX:+UseG1GC" {
			bestG1 = e
		}
	}
	if bestG1 == nil || bestG1.Score != 12 {
		t.Fatalf("compaction kept the wrong G1 entry: %+v", bestG1)
	}
}

func TestStoreStaleCompactTempSwept(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	stale := filepath.Join(dir, storeFile+".compact123")
	if err := os.WriteFile(stale, []byte("leftover"), 0o644); err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	st2, err := Open(dir, tel)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale compaction temp not swept")
	}
	if tel.Counter("transfer_store_stale_temps_removed_total").Value() != 1 {
		t.Fatal("sweep not counted")
	}
}

func TestNearest(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	names := workload.Names()
	target, ok := workload.ByName(names[0])
	if !ok {
		t.Fatal("no workloads")
	}
	fp := FingerprintOf(target)

	// Exact-match entries (two, different scores) plus other workloads.
	if err := st.Append(testEntry(t, names[0], 15, "-XX:+UseG1GC")); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(testEntry(t, names[0], 12, "-XX:+UseParallelGC")); err != nil {
		t.Fatal(err)
	}
	for _, n := range names[1:4] {
		if err := st.Append(testEntry(t, n, 20)); err != nil {
			t.Fatal(err)
		}
	}
	// An entry from a future fingerprint schema must never rank.
	futur := testEntry(t, names[4], 1)
	futur.FP.Version = FingerprintVersion + 1
	if err := st.Append(futur); err != nil {
		t.Fatal(err)
	}

	nbs := st.Nearest(fp, 3)
	if len(nbs) != 3 {
		t.Fatalf("got %d neighbours, want 3", len(nbs))
	}
	if nbs[0].Distance != 0 || nbs[0].Entry.Workload != names[0] {
		t.Fatalf("nearest is %+v, want exact match", nbs[0])
	}
	// One entry per fingerprint group, and the group is represented by its
	// best (lowest relative score) entry.
	if nbs[0].Entry.Score != 12 {
		t.Fatalf("group best score = %v, want 12", nbs[0].Entry.Score)
	}
	for i := 1; i < len(nbs); i++ {
		if nbs[i].Distance < nbs[i-1].Distance {
			t.Fatal("neighbours not sorted by distance")
		}
		if nbs[i].Entry.Workload == names[0] {
			t.Fatal("same fingerprint group returned twice")
		}
	}
	// Default k.
	if got := st.Nearest(fp, 0); len(got) != 3 {
		t.Fatalf("default k returned %d", len(got))
	}
}

func TestStoreNilSafe(t *testing.T) {
	var st *Store
	if st.Len() != 0 || st.Entries() != nil || st.Nearest(Fingerprint{}, 3) != nil {
		t.Fatal("nil store reads not safe")
	}
	if st.Append(&Entry{}) != nil || st.Compact() != nil || st.Close() != nil {
		t.Fatal("nil store writes not safe")
	}
}
