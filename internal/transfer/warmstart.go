package transfer

import (
	"repro/internal/flags"
	"repro/internal/hierarchy"
)

// Prior is one warm-start candidate: a stored entry whose configuration was
// re-validated against the live flag registry and is ready to be proposed.
type Prior struct {
	// Entry is the store entry this prior came from.
	Entry *Entry
	// Distance is the fingerprint distance from the current workload.
	Distance float64
	// Config is the repaired configuration over the session's registry.
	Config *flags.Config
	// Dropped counts stored arguments the live registry no longer accepts
	// (renamed or removed flags across store generations).
	Dropped int
	// Norm is the entry's baseline-relative score (Score/BaselineScore),
	// the scale-free quality signal surrogate models pre-load.
	Norm float64
}

// RepairArgs re-parses a stored argument list against reg, keeping every
// argument the live registry still understands and counting the rest as
// dropped. Stored configs travel as rendered ExplicitArgs precisely so this
// per-argument salvage is possible: interned flag IDs differ across
// registry generations, but "-XX:+UseG1GC" parses against any registry that
// still has the flag. The repaired config must still satisfy the hierarchy
// (exactly one collector selected, guards consistent); a config that lost a
// load-bearing argument fails validation and the caller discards it.
func RepairArgs(reg *flags.Registry, args []string) (cfg *flags.Config, dropped int, err error) {
	cfg = flags.NewConfig(reg)
	for _, a := range args {
		one, perr := flags.ParseArgs(reg, []string{a})
		if perr != nil {
			dropped++
			continue
		}
		var serr error
		one.EachExplicit(func(f *flags.Flag, v flags.Value) {
			if e := cfg.Set(f.Name, v); e != nil && serr == nil {
				serr = e
			}
		})
		if serr != nil {
			dropped++
		}
	}
	if err := hierarchy.Validate(cfg); err != nil {
		return nil, dropped, err
	}
	if _, err := hierarchy.SelectedCollector(cfg); err != nil {
		return nil, dropped, err
	}
	return cfg, dropped, nil
}

// Priors queries the store for the k nearest fingerprint groups to fp and
// repairs each group's best configuration against reg. Invalid or duplicate
// configurations (same canonical key after repair) are skipped, so the
// result injects each distinct surviving configuration exactly once, in
// nearest-first order. A config whose canonical key is empty — i.e. one
// that repair reduced to the registry defaults — is skipped too: the
// session measures the baseline regardless, so it carries no information.
func Priors(st *Store, reg *flags.Registry, fp Fingerprint, k int) []Prior {
	var out []Prior
	seen := make(map[string]bool)
	for _, nb := range st.Nearest(fp, k) {
		cfg, dropped, err := RepairArgs(reg, nb.Entry.Args)
		if err != nil {
			continue
		}
		key := cfg.Key()
		if key == "" || seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Prior{
			Entry:    nb.Entry,
			Distance: nb.Distance,
			Config:   cfg,
			Dropped:  dropped,
			Norm:     nb.Entry.relScore(),
		})
	}
	return out
}
