package transfer

import (
	"testing"

	"repro/internal/flags"
	"repro/internal/workload"
)

func TestRepairArgsKeepsKnownDropsUnknown(t *testing.T) {
	reg := flags.NewRegistry()
	cfg, dropped, err := RepairArgs(reg, []string{
		"-XX:+UseG1GC",
		"-XX:MaxGCPauseMillis=50",
		"-XX:+FlagThatNeverExisted",   // removed across store generations
		"-XX:AlsoGone=17",             // ditto, valued form
		"-XX:+UnlockExperimentalVMOptions", // gate pseudo-flag, accepted+ignored
	})
	if err != nil {
		t.Fatalf("repair failed: %v", err)
	}
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if !cfg.Bool("UseG1GC") {
		t.Fatal("surviving argument not applied")
	}
	names := cfg.ExplicitNames()
	for _, n := range names {
		if n == "FlagThatNeverExisted" || n == "AlsoGone" {
			t.Fatalf("unknown flag survived repair: %v", names)
		}
	}
}

func TestRepairArgsRejectsInvalidHierarchy(t *testing.T) {
	reg := flags.NewRegistry()
	// Two explicitly selected collectors violate the hierarchy; a config
	// that confused it must not become a prior.
	if _, _, err := RepairArgs(reg, []string{"-XX:+UseG1GC", "-XX:+UseSerialGC"}); err == nil {
		t.Fatal("conflicting collectors passed repair")
	}
}

func TestPriors(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	names := workload.Names()
	target, _ := workload.ByName(names[0])
	fp := FingerprintOf(target)

	// Nearest group: a repairable config with one dead flag.
	e := testEntry(t, names[0], 12, "-XX:+UseG1GC", "-XX:MaxGCPauseMillis=50", "-XX:+FlagThatNeverExisted")
	if err := st.Append(e); err != nil {
		t.Fatal(err)
	}
	// A different workload whose config repairs to the SAME canonical key:
	// deduplicated, injected once.
	if err := st.Append(testEntry(t, names[1], 14, "-XX:+UseG1GC", "-XX:MaxGCPauseMillis=50")); err != nil {
		t.Fatal(err)
	}
	// A group whose config cannot be repaired (invalid hierarchy): skipped.
	if err := st.Append(testEntry(t, names[2], 10, "-XX:+UseG1GC", "-XX:+UseSerialGC")); err != nil {
		t.Fatal(err)
	}
	// A distinct valid config: second prior.
	if err := st.Append(testEntry(t, names[3], 13, "-XX:+UseSerialGC")); err != nil {
		t.Fatal(err)
	}
	// A config that repairs down to the registry defaults (explicit
	// assignment of the default collector): empty canonical key, skipped —
	// the session measures the baseline regardless.
	if err := st.Append(testEntry(t, names[4], 13, "-XX:+UseParallelGC")); err != nil {
		t.Fatal(err)
	}

	reg := flags.NewRegistry()
	priors := Priors(st, reg, fp, 5)
	if len(priors) != 2 {
		t.Fatalf("got %d priors, want 2 (dedupe + invalid skipped): %+v", len(priors), priors)
	}
	if priors[0].Entry.Workload != names[0] || priors[0].Distance != 0 {
		t.Fatalf("first prior is %+v, want the exact-match group", priors[0])
	}
	if priors[0].Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", priors[0].Dropped)
	}
	if !priors[0].Config.Bool("UseG1GC") {
		t.Fatal("prior config lost its collector")
	}
	if got, want := priors[0].Norm, 12.0/20.0; got != want {
		t.Fatalf("Norm = %v, want %v", got, want)
	}
	// Priors are built over the caller's registry, so they can interbreed
	// with session-proposed configs (Crossover panics across registries).
	if priors[0].Config.Key() == priors[1].Config.Key() {
		t.Fatal("duplicate priors after dedupe")
	}
}
