package workload

import (
	"reflect"
	"testing"
)

// Profile.Clone relies on every field being a value type: a struct copy of
// such a Profile is a deep copy. Multiple runners share cloned profiles
// across goroutines, so a silently-aliased slice or map field would be a
// data race. This guard fails the moment a reference-typed field is added,
// pointing at the method that must then copy it explicitly.
func TestProfileHasOnlyValueFields(t *testing.T) {
	typ := reflect.TypeOf(Profile{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		switch f.Type.Kind() {
		case reflect.Slice, reflect.Map, reflect.Pointer, reflect.Chan,
			reflect.Func, reflect.Interface, reflect.UnsafePointer:
			t.Errorf("Profile.%s is a %s: struct copy now aliases it — update Profile.Clone to copy it explicitly, then extend this guard",
				f.Name, f.Type.Kind())
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p, ok := ByName("h2")
	if !ok {
		t.Fatal("no h2 profile")
	}
	c := p.Clone()
	if !reflect.DeepEqual(*p, *c) {
		t.Fatal("clone differs from the original")
	}
	c.Name, c.BaseSeconds = "mutant", p.BaseSeconds*2
	if p.Name == "mutant" || p.BaseSeconds == c.BaseSeconds {
		t.Error("mutating a clone must not affect the original")
	}
}
