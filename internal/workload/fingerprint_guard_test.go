package workload_test

// The transfer subsystem's workload fingerprint (internal/transfer) is a
// pure function of Profile's numeric fields. These guards live with the
// Profile definition because that is where they fire: adding a numeric
// field that shapes simulated performance without teaching the fingerprint
// about it silently degrades transfer quality (two workloads differing only
// in the new field would collide), and nothing else in the build would
// notice.

import (
	"reflect"
	"testing"

	"repro/internal/transfer"
	"repro/internal/workload"
)

// fingerprintBase is a synthetic profile with every numeric field at a
// mid-range value, so no fingerprint feature sits at a clamp boundary where
// a perturbation could vanish.
func fingerprintBase() *workload.Profile {
	return &workload.Profile{
		Name: "guard", Suite: "test",
		BaseSeconds: 20, StartupFraction: 0.3, WarmupWork: 5,
		HotMethods: 100, CodeKBPerMethod: 1, CallIntensity: 0.5,
		LoopIntensity: 0.5, EscapeFrac: 0.4, AllocRateMBps: 100,
		LiveSetMB: 100, ClassMetaMB: 20, ShortLivedFrac: 0.6,
		MidLivedFrac: 0.2, MidLifeRounds: 3, EdenHalfLifeMB: 30,
		LargeObjectFrac: 0.1, PointerIntensity: 0.5, RefIntensity: 0.2,
		StringIntensity: 0.3, SyncIntensity: 0.4, LockContention: 0.3,
		AppThreads: 8, ExplicitGCCalls: 2,
	}
}

// TestEveryNumericProfileFieldFeedsFingerprint perturbs each numeric field
// of Profile in turn and requires the fingerprint to move. A field this
// test flags is either missing from the transfer feature table or mapped
// through a transform that erases it.
func TestEveryNumericProfileFieldFeedsFingerprint(t *testing.T) {
	base := fingerprintBase()
	baseKey := transfer.FingerprintOf(base).Key()
	typ := reflect.TypeOf(*base)
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		p := base.Clone()
		v := reflect.ValueOf(p).Elem().Field(i)
		switch f.Type.Kind() {
		case reflect.Float64:
			v.SetFloat(v.Float() * 0.5)
		case reflect.Int:
			v.SetInt(v.Int() + 3)
		default:
			continue // strings don't feed the fingerprint by design
		}
		if got := transfer.FingerprintOf(p).Key(); got == baseKey {
			t.Errorf("perturbing Profile.%s does not change the fingerprint — add it to the transfer feature table", f.Name)
		}
	}
}

// TestGeneratedFingerprintDeterministic pins that generated workloads
// fingerprint deterministically under a fixed seed — the property the
// knowledge store's lookups rely on — and that distinct seeds of one kind
// actually land on distinct fingerprints.
func TestGeneratedFingerprintDeterministic(t *testing.T) {
	for _, kind := range workload.GenKinds() {
		for _, seed := range []int64{1, 7} {
			a, err := workload.Generate(kind, seed)
			if err != nil {
				t.Fatalf("Generate(%q, %d): %v", kind, seed, err)
			}
			b, err := workload.Generate(kind, seed)
			if err != nil {
				t.Fatal(err)
			}
			if ka, kb := transfer.FingerprintOf(a).Key(), transfer.FingerprintOf(b).Key(); ka != kb {
				t.Errorf("Generate(%q, %d) fingerprints nondeterministically:\n%s\n%s", kind, seed, ka, kb)
			}
		}
		s1, err := workload.Generate(kind, 1)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := workload.Generate(kind, 2)
		if err != nil {
			t.Fatal(err)
		}
		if transfer.FingerprintOf(s1).Key() == transfer.FingerprintOf(s2).Key() {
			t.Errorf("Generate(%q) seeds 1 and 2 collide on one fingerprint", kind)
		}
	}
}
