package workload

import (
	"fmt"
	"math/rand"
)

// GenKind selects the family of a generated workload.
type GenKind string

// Generated workload families.
const (
	// GenStartup resembles the SPECjvm2008 startup programs: short,
	// warm-up dominated, modest heaps.
	GenStartup GenKind = "startup"
	// GenServer resembles long-running services: allocation-heavy,
	// sizeable live sets, contended locks.
	GenServer GenKind = "server"
	// GenBatch resembles loop-bound batch computation: little allocation,
	// deep loops, large arrays.
	GenBatch GenKind = "batch"
	// GenMixed draws every parameter from its full plausible range.
	GenMixed GenKind = "mixed"
)

// GenKinds lists the generator families.
func GenKinds() []GenKind {
	return []GenKind{GenStartup, GenServer, GenBatch, GenMixed}
}

// Generate synthesizes a random but internally consistent workload profile
// of the given family. The same (kind, seed) always yields the identical
// profile. Every generated profile validates and runs under default flags
// (live sets and class metadata stay inside the default heap and permgen).
func Generate(kind GenKind, seed int64) (*Profile, error) {
	rng := rand.New(rand.NewSource(seed))
	between := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }

	p := &Profile{
		Name:        fmt.Sprintf("gen.%s.%d", kind, seed),
		Suite:       "generated",
		Description: fmt.Sprintf("generated %s workload (seed %d)", kind, seed),
	}
	switch kind {
	case GenStartup:
		p.BaseSeconds = between(8, 25)
		p.StartupFraction = between(0.7, 0.95)
		p.WarmupWork = between(0.02, 0.25) * p.BaseSeconds
		p.HotMethods = 300 + rng.Intn(3500)
		p.CallIntensity = between(0.3, 0.85)
		p.LoopIntensity = between(0.05, 0.6)
		p.AllocRateMBps = between(15, 150)
		p.LiveSetMB = between(15, 80)
		p.AppThreads = 1 + rng.Intn(4)
		p.ClassMetaMB = between(8, 45)
	case GenServer:
		p.BaseSeconds = between(25, 70)
		p.StartupFraction = between(0.05, 0.25)
		p.WarmupWork = between(0.01, 0.04) * p.BaseSeconds
		p.HotMethods = 800 + rng.Intn(3500)
		p.CallIntensity = between(0.5, 0.9)
		p.LoopIntensity = between(0.05, 0.4)
		p.AllocRateMBps = between(60, 200)
		p.LiveSetMB = between(60, 250)
		p.AppThreads = 2 + rng.Intn(14)
		p.ClassMetaMB = between(20, 70)
	case GenBatch:
		p.BaseSeconds = between(15, 60)
		p.StartupFraction = between(0.1, 0.4)
		p.WarmupWork = between(0.005, 0.02) * p.BaseSeconds
		p.HotMethods = 100 + rng.Intn(600)
		p.CallIntensity = between(0.05, 0.3)
		p.LoopIntensity = between(0.6, 0.98)
		p.AllocRateMBps = between(5, 50)
		p.LiveSetMB = between(20, 150)
		p.AppThreads = 1 + rng.Intn(8)
		p.ClassMetaMB = between(6, 25)
		p.LargeObjectFrac = between(0.1, 0.5)
	case GenMixed:
		p.BaseSeconds = between(8, 70)
		p.StartupFraction = between(0.05, 0.95)
		p.WarmupWork = between(0.005, 0.25) * p.BaseSeconds
		p.HotMethods = 100 + rng.Intn(4000)
		p.CallIntensity = between(0.05, 0.9)
		p.LoopIntensity = between(0.05, 0.95)
		p.AllocRateMBps = between(5, 200)
		p.LiveSetMB = between(15, 250)
		p.AppThreads = 1 + rng.Intn(16)
		p.ClassMetaMB = between(6, 70)
	default:
		return nil, fmt.Errorf("workload: unknown generator kind %q", kind)
	}

	// Shared secondary characteristics, correlated with the primary draw.
	p.CodeKBPerMethod = between(1.2, 2.3)
	p.EscapeFrac = between(0.05, 0.45)
	p.ShortLivedFrac = between(0.78, 0.96)
	p.MidLivedFrac = between(0.02, minf(0.14, 0.99-p.ShortLivedFrac))
	p.MidLifeRounds = between(2, 5)
	p.EdenHalfLifeMB = between(10, 70)
	if p.LargeObjectFrac == 0 {
		p.LargeObjectFrac = between(0, 0.15)
	}
	p.PointerIntensity = between(0.15, 0.75)
	p.RefIntensity = between(0, 0.2)
	p.StringIntensity = between(0, 0.7)
	p.SyncIntensity = between(0.02, 0.65)
	p.LockContention = between(0, 0.35)
	if p.AppThreads == 1 {
		p.LockContention = 0
	}
	if rng.Float64() < 0.1 {
		p.ExplicitGCCalls = 1 + rng.Intn(10)
	}

	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generator produced an invalid profile: %w", err)
	}
	return p, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
