package workload

import (
	"testing"
)

func TestGenerateAllKindsValid(t *testing.T) {
	for _, kind := range GenKinds() {
		for seed := int64(0); seed < 50; seed++ {
			p, err := Generate(kind, seed)
			if err != nil {
				t.Fatalf("Generate(%s, %d): %v", kind, seed, err)
			}
			if err := p.Validate(); err != nil {
				t.Errorf("generated profile invalid: %v", err)
			}
			if p.Suite != "generated" {
				t.Errorf("suite = %q", p.Suite)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(GenServer, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenServer, 42)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Error("same (kind, seed) must reproduce the profile exactly")
	}
	c, _ := Generate(GenServer, 43)
	if *a == *c {
		t.Error("different seeds should differ")
	}
}

func TestGenerateKindShapes(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		st, _ := Generate(GenStartup, seed)
		if st.StartupFraction < 0.5 {
			t.Errorf("startup kind with StartupFraction %.2f", st.StartupFraction)
		}
		sv, _ := Generate(GenServer, seed)
		if sv.StartupFraction > 0.5 {
			t.Errorf("server kind with StartupFraction %.2f", sv.StartupFraction)
		}
		bt, _ := Generate(GenBatch, seed)
		if bt.LoopIntensity < 0.5 {
			t.Errorf("batch kind with LoopIntensity %.2f", bt.LoopIntensity)
		}
		if bt.LargeObjectFrac < 0.1 {
			t.Errorf("batch kind should carry large objects, got %.2f", bt.LargeObjectFrac)
		}
	}
}

func TestGenerateLiveSetsFitDefaultHeap(t *testing.T) {
	// Every generated profile must run under default flags (the tuner
	// baseline); live sets stay under the ~270 MB the ergonomic old
	// generation provides, and class metadata under the 85 MB permgen.
	for _, kind := range GenKinds() {
		for seed := int64(0); seed < 100; seed++ {
			p, _ := Generate(kind, seed)
			if p.LiveSetMB > 255 {
				t.Errorf("%s seed %d: live set %.0f MB too big for the default heap",
					kind, seed, p.LiveSetMB)
			}
			if p.ClassMetaMB > 80 {
				t.Errorf("%s seed %d: class metadata %.0f MB too big for the default permgen",
					kind, seed, p.ClassMetaMB)
			}
		}
	}
}

func TestGenerateUnknownKind(t *testing.T) {
	if _, err := Generate("nope", 1); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestGenerateSingleThreadNoContention(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		p, _ := Generate(GenStartup, seed)
		if p.AppThreads == 1 && p.LockContention != 0 {
			t.Errorf("single-threaded profile with contention %.2f", p.LockContention)
		}
	}
}
