// Package workload defines the benchmark programs the auto-tuner is
// evaluated on. A Profile is a compact behavioural description of a Java
// program — how much it computes, allocates, synchronizes, and how much of
// its run is warm-up — from which internal/jvmsim derives execution time
// under any flag configuration.
//
// Two suites mirror the paper's evaluation: the 16 SPECjvm2008 *startup*
// programs (short, fresh-JVM runs dominated by JIT warm-up behaviour) and 13
// DaCapo programs (iterating workloads dominated by heap and GC behaviour).
// The profiles are synthetic stand-ins calibrated to reproduce the *shape*
// of the paper's results, not measurements of the real programs; see
// DESIGN.md for the substitution argument.
package workload

import (
	"fmt"
	"sort"
)

// Profile describes one benchmark program's behaviour.
type Profile struct {
	// Name is the benchmark's identifier, e.g. "startup.compiler.compiler".
	Name string
	// Suite is "specjvm2008", "dacapo", or "custom".
	Suite string
	// Description says what the (real) program does.
	Description string

	// BaseSeconds is the pure application compute time of one run at full
	// compiled (C2) speed with reference inlining — the floor no flag
	// setting can beat.
	BaseSeconds float64
	// StartupFraction is the share of the run that happens before the
	// process is warm; it scales warm-up-sensitive effects such as
	// BiasedLockingStartupDelay and heap pre-touching.
	StartupFraction float64

	// WarmupWork is the seconds of hot-code work the default configuration
	// (CompileThreshold=10000, no tiering) executes in the interpreter
	// before compilation kicks in. The JIT model scales it with the
	// configured threshold.
	WarmupWork float64
	// HotMethods is the size of the hot compile set.
	HotMethods int
	// CodeKBPerMethod is the average compiled size of a hot method.
	CodeKBPerMethod float64
	// CallIntensity (0..1) is how call-bound the program is; it scales the
	// benefit and harm of inlining decisions.
	CallIntensity float64
	// LoopIntensity (0..1) is how loop-bound the program is; it scales
	// vectorization and loop-optimization effects.
	LoopIntensity float64
	// EscapeFrac is the fraction of allocation that escape analysis can
	// eliminate.
	EscapeFrac float64

	// AllocRateMBps is the allocation rate while the program computes.
	AllocRateMBps float64
	// LiveSetMB is the steady live data the old generation must hold.
	LiveSetMB float64
	// ClassMetaMB is the class metadata footprint the permanent generation
	// must hold (JDK-7 era); programs with large framework stacks crowd the
	// default 85 MB MaxPermSize.
	ClassMetaMB float64
	// ShortLivedFrac is the fraction of allocated bytes that die young
	// given enough eden residency.
	ShortLivedFrac float64
	// MidLivedFrac is the fraction that die after surviving a few
	// collections (candidates for survivor-space aging).
	MidLivedFrac float64
	// MidLifeRounds is the mean number of scavenges a mid-lived object
	// survives; it interacts with MaxTenuringThreshold.
	MidLifeRounds float64
	// EdenHalfLifeMB is the eden residency (in MB of allocation) an object
	// needs for the short-lived fraction to actually die before a scavenge.
	// Small edens collect objects before they can die.
	EdenHalfLifeMB float64
	// LargeObjectFrac is the fraction of allocation in objects big enough
	// to matter for pretenuring and G1 humongous regions.
	LargeObjectFrac float64

	// PointerIntensity (0..1) scales pointer-chasing effects (compressed
	// oops, card marking, G1 remembered sets).
	PointerIntensity float64
	// RefIntensity (0..1) scales soft/weak reference processing cost.
	RefIntensity float64
	// StringIntensity (0..1) scales string-related optimizations.
	StringIntensity float64

	// SyncIntensity (0..1) is how much locking the program does;
	// LockContention (0..1) is how contended those locks are.
	SyncIntensity  float64
	LockContention float64
	// AppThreads is the number of application threads doing the work.
	AppThreads int
	// ExplicitGCCalls is the number of System.gc() calls per run.
	ExplicitGCCalls int
}

// Validate checks that the profile is internally consistent.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile has no name")
	case p.BaseSeconds <= 0:
		return fmt.Errorf("workload %s: BaseSeconds must be positive", p.Name)
	case p.WarmupWork < 0:
		return fmt.Errorf("workload %s: negative WarmupWork", p.Name)
	case p.HotMethods <= 0:
		return fmt.Errorf("workload %s: HotMethods must be positive", p.Name)
	case p.AllocRateMBps < 0:
		return fmt.Errorf("workload %s: negative AllocRateMBps", p.Name)
	case p.LiveSetMB < 0:
		return fmt.Errorf("workload %s: negative LiveSetMB", p.Name)
	case p.ClassMetaMB < 0:
		return fmt.Errorf("workload %s: negative ClassMetaMB", p.Name)
	case p.ShortLivedFrac < 0 || p.MidLivedFrac < 0 || p.ShortLivedFrac+p.MidLivedFrac > 1:
		return fmt.Errorf("workload %s: lifetime fractions must be non-negative and sum to at most 1", p.Name)
	case p.StartupFraction < 0 || p.StartupFraction > 1:
		return fmt.Errorf("workload %s: StartupFraction outside [0,1]", p.Name)
	case p.AppThreads <= 0:
		return fmt.Errorf("workload %s: AppThreads must be positive", p.Name)
	case p.EdenHalfLifeMB <= 0:
		return fmt.Errorf("workload %s: EdenHalfLifeMB must be positive", p.Name)
	case p.MidLifeRounds <= 0:
		return fmt.Errorf("workload %s: MidLifeRounds must be positive", p.Name)
	}
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"CallIntensity", p.CallIntensity}, {"LoopIntensity", p.LoopIntensity},
		{"EscapeFrac", p.EscapeFrac}, {"LargeObjectFrac", p.LargeObjectFrac},
		{"PointerIntensity", p.PointerIntensity}, {"RefIntensity", p.RefIntensity},
		{"StringIntensity", p.StringIntensity}, {"SyncIntensity", p.SyncIntensity},
		{"LockContention", p.LockContention},
	} {
		if v.val < 0 || v.val > 1 {
			return fmt.Errorf("workload %s: %s outside [0,1]", p.Name, v.name)
		}
	}
	return nil
}

// Clone returns an independent copy of the profile. Profile holds only
// value fields (strings, numbers), so a struct copy is a deep copy; the
// reflection guard in workload_test.go fails the build's tests if a
// reference-typed field (slice, map, pointer) is ever added without
// updating this method to copy it explicitly.
func (p *Profile) Clone() *Profile {
	c := *p
	return &c
}

// LongLivedFrac is the fraction of allocation that lives until (at least)
// the program's steady state and must be promoted eventually.
func (p *Profile) LongLivedFrac() float64 {
	return 1 - p.ShortLivedFrac - p.MidLivedFrac
}

// ByName returns the named profile from the built-in suites.
func ByName(name string) (*Profile, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}

// All returns every built-in profile, SPECjvm2008 first, then DaCapo,
// each suite in its canonical order.
func All() []*Profile {
	return append(SPECjvm2008(), DaCapo()...)
}

// Names returns the sorted names of all built-in profiles.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, p := range all {
		out[i] = p.Name
	}
	sort.Strings(out)
	return out
}
