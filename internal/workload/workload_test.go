package workload

import (
	"strings"
	"testing"
)

func TestSuiteSizesMatchPaper(t *testing.T) {
	if n := len(SPECjvm2008()); n != 16 {
		t.Errorf("SPECjvm2008 startup suite has %d programs, paper used 16", n)
	}
	if n := len(DaCapo()); n != 13 {
		t.Errorf("DaCapo suite has %d programs, paper used 13", n)
	}
	if n := len(All()); n != 29 {
		t.Errorf("All() returned %d profiles, want 29", n)
	}
}

func TestAllProfilesValidate(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestProfileNamesUniqueAndSuitesLabelled(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range All() {
		if seen[p.Name] {
			t.Errorf("duplicate profile name %s", p.Name)
		}
		seen[p.Name] = true
		switch p.Suite {
		case "specjvm2008":
			if !strings.HasPrefix(p.Name, "startup.") {
				t.Errorf("SPECjvm2008 startup program %s should carry the startup. prefix", p.Name)
			}
		case "dacapo":
			if strings.HasPrefix(p.Name, "startup.") {
				t.Errorf("DaCapo program %s should not carry the startup. prefix", p.Name)
			}
		default:
			t.Errorf("profile %s has unexpected suite %q", p.Name, p.Suite)
		}
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("h2")
	if !ok || p.Suite != "dacapo" {
		t.Error("ByName(h2) failed")
	}
	p, ok = ByName("startup.compiler.compiler")
	if !ok || p.Suite != "specjvm2008" {
		t.Error("ByName(startup.compiler.compiler) failed")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName should miss on unknown names")
	}
}

func TestNamesSortedComplete(t *testing.T) {
	names := Names()
	if len(names) != len(All()) {
		t.Fatalf("Names() has %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not strictly sorted at %d", i)
		}
	}
}

func TestSuiteShapesAreDistinct(t *testing.T) {
	// Startup programs must be warm-up shaped; DaCapo must be GC shaped.
	for _, p := range SPECjvm2008() {
		if p.StartupFraction < 0.5 {
			t.Errorf("%s: startup program with StartupFraction %.2f", p.Name, p.StartupFraction)
		}
	}
	var maxLive float64
	for _, p := range DaCapo() {
		if p.StartupFraction > 0.5 {
			t.Errorf("%s: iterating program with StartupFraction %.2f", p.Name, p.StartupFraction)
		}
		if p.LiveSetMB > maxLive {
			maxLive = p.LiveSetMB
		}
	}
	// At least one DaCapo program must crowd the default 512 MB heap's old
	// generation (~280 MB once ergonomics grow the young generation) —
	// that is where the paper's large GC wins come from.
	if maxLive < 220 {
		t.Errorf("largest DaCapo live set is only %.0f MB; nothing stresses the default heap", maxLive)
	}
}

func TestLongLivedFrac(t *testing.T) {
	p := Profile{ShortLivedFrac: 0.9, MidLivedFrac: 0.06}
	if got := p.LongLivedFrac(); got < 0.0399 || got > 0.0401 {
		t.Errorf("LongLivedFrac = %v, want 0.04", got)
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	good := *SPECjvm2008()[0]
	cases := []struct {
		name   string
		mutate func(p *Profile)
	}{
		{"no name", func(p *Profile) { p.Name = "" }},
		{"zero base", func(p *Profile) { p.BaseSeconds = 0 }},
		{"negative warmup", func(p *Profile) { p.WarmupWork = -1 }},
		{"zero hot methods", func(p *Profile) { p.HotMethods = 0 }},
		{"negative alloc", func(p *Profile) { p.AllocRateMBps = -1 }},
		{"negative live", func(p *Profile) { p.LiveSetMB = -1 }},
		{"fractions over 1", func(p *Profile) { p.ShortLivedFrac, p.MidLivedFrac = 0.8, 0.3 }},
		{"startup over 1", func(p *Profile) { p.StartupFraction = 1.5 }},
		{"zero threads", func(p *Profile) { p.AppThreads = 0 }},
		{"zero halflife", func(p *Profile) { p.EdenHalfLifeMB = 0 }},
		{"zero midlife", func(p *Profile) { p.MidLifeRounds = 0 }},
		{"intensity over 1", func(p *Profile) { p.CallIntensity = 1.5 }},
		{"negative contention", func(p *Profile) { p.LockContention = -0.1 }},
	}
	for _, c := range cases {
		p := good
		c.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad profile", c.name)
		}
	}
}
