#!/bin/sh
# The repo's benchmark harness. Runs the hot-path benchmark suite — the flag
# layer, the simulator batch entry points, and the 16-worker session
# throughput headline — and persists the result as a BENCH_<n>.json
# trajectory point via cmd/benchdiff.
#
#   scripts/bench.sh            record the next BENCH_<n>.json
#   scripts/bench.sh -check     run fresh, compare against the latest
#                               recorded point, exit 1 on >10% regression
#
# `make bench` routes here; it used to invoke `go test -bench=. -benchmem`
# bare, which re-ran every unit test and threw the numbers away.
set -eu

cd "$(dirname "$0")/.."

MODE="record"
if [ "${1:-}" = "-check" ]; then
	MODE="check"
fi

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

# -run '^$' keeps unit tests out of the run; -benchtime is bounded so the
# whole suite stays in CI territory (~1 minute). The -bench selector names
# hot-path benchmarks only — one-shot constructors (BenchmarkNewRegistry)
# are too noisy for a 10% regression gate and are not what the trajectory
# tracks.
{
	go test -run '^$' \
		-bench '^Benchmark(Config|CommandLine|ParseArgs|MutateFlag|SampleValue|Diff|Simulator)' \
		-benchmem -benchtime 1s \
		./internal/flags ./internal/jvmsim
	go test -run '^$' -bench 'BenchmarkSessionThroughput16' -benchtime 5s \
		./internal/core
	# The dispatch pair: the same fresh trial in-process and over loopback
	# HTTP to a real evald handler. Their delta is the per-trial cost of
	# the distributed plane's transport.
	go test -run '^$' -bench '^BenchmarkDispatch' -benchmem -benchtime 1s \
		./internal/dispatch
	# The transfer pair: fingerprinting a workload and querying a populated
	# knowledge base — both on every warm-started session's startup path.
	go test -run '^$' -bench '^Benchmark(Fingerprint|StoreLookup)' -benchmem -benchtime 1s \
		./internal/transfer
	# The drift pair: the detector's per-observation fold (paid on every
	# delivered measurement of a drift-armed session) and the full re-tune
	# path — detection, demotion, searcher rebuild, recovery search.
	go test -run '^$' -bench '^BenchmarkDriftDetector$' -benchmem -benchtime 1s \
		./internal/drift
	go test -run '^$' -bench '^BenchmarkEpochRetune$' -benchtime 1x -count 3 \
		./internal/core
} | tee /dev/stderr >"$OUT"

latest="$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)"

if [ "$MODE" = "check" ]; then
	if [ -z "$latest" ]; then
		echo "bench.sh: no recorded BENCH_*.json to compare against" >&2
		exit 1
	fi
	fresh="$(mktemp)"
	trap 'rm -f "$OUT" "$fresh"' EXIT
	go run ./cmd/benchdiff fmt -o "$fresh" <"$OUT"
	go run ./cmd/benchdiff check "$latest" "$fresh"
	exit 0
fi

if [ -z "$latest" ]; then
	n=1
else
	n=$(( $(basename "$latest" .json | cut -d_ -f2) + 1 ))
fi
go run ./cmd/benchdiff fmt -o "BENCH_${n}.json" \
	-note "${BENCH_NOTE:-recorded by scripts/bench.sh}" <"$OUT"
echo "bench.sh: wrote BENCH_${n}.json"
