#!/bin/sh
# Coverage floors for the measurement pipeline, the durability layer, and
# the overload controls: the retry/fault-injection machinery, the
# checkpoint/journal code, the admission/hedging/quarantine paths, and the
# farm API are exactly the code whose edge cases only show up on a bad
# day, so their packages must stay well covered. Fails if any listed
# package drops below the floor.
set -eu

cd "$(dirname "$0")/.."

FLOOR=80

# Per-package overrides for code held to a higher bar: the drift detector
# is a tiny pure fold whose every branch is reachable from tests, and a
# miss there silently re-tunes (or fails to) whole sessions.
floor_for() {
    case "$1" in
        ./internal/drift) echo 85 ;;
        *) echo "$FLOOR" ;;
    esac
}

status=0
for pkg in ./internal/runner ./internal/faultinject ./internal/telemetry \
           ./internal/checkpoint ./internal/persist ./internal/core \
           ./internal/httpapi ./internal/flags ./internal/jvmsim \
           ./internal/dispatch ./internal/evald ./internal/transfer \
           ./internal/drift; do
    line=$(go test -cover "$pkg" | tail -1)
    echo "$line"
    pct=$(echo "$line" | grep -o 'coverage: [0-9.]*' | grep -o '[0-9.]*')
    floor=$(floor_for "$pkg")
    if [ -z "$pct" ]; then
        echo "cover: no coverage figure for $pkg" >&2
        status=1
        continue
    fi
    below=$(awk -v p="$pct" -v f="$floor" 'BEGIN { print (p < f) ? 1 : 0 }')
    if [ "$below" = 1 ]; then
        echo "cover: $pkg at ${pct}% is below the ${floor}% floor" >&2
        status=1
    fi
done
exit $status
