#!/bin/sh
# The repo's verification gate: build everything, vet everything, and run
# the full test suite under the race detector. The engine runs real
# goroutines (core executor, httpapi worker pool), so -race is part of the
# gate, not an optional extra.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...

# Replay the checked-in fuzz seed corpora (no fuzzing engine, just the
# corpus as regular tests) and enforce the coverage floors on the
# measurement pipeline.
go test -run 'Fuzz' ./internal/flags ./internal/runner ./internal/checkpoint ./internal/dispatch ./internal/evald ./internal/transfer
./scripts/cover.sh

# The durability gate: kill-and-resume drills for every searcher, the CLI,
# and the job farm must converge to byte-identical results.
make crash-matrix

# The overload gate: bursts shed with 429 + Retry-After while control
# requests keep answering, hedging and quarantine stay deterministic, and
# budget-killed runs degrade to best-so-far instead of failing.
make overload-drill

# The distributed gate: fixed-seed sessions against real evald sockets —
# including one where a node is SIGKILLed mid-session — stay byte-identical
# to the in-process run, and fleet death degrades instead of failing.
make dist-drill

# The transfer gate: warm starts reach the cold best at half the trials,
# torn stores salvage instead of failing, bogus stores degrade to cold
# starts, and warm-started fleet sessions match in-process byte for byte.
make transfer-drill

# The drift gate: a scheduled workload shift opens a recovery epoch that
# beats the stale winner on the post-shift profile, stationary sessions
# never false-positive, mid-epoch kills resume byte-identical, and polls
# surface the per-epoch breakdown and degraded-reason strings.
make drift-drill

# The perf gate (opt-in, BENCH_CHECK=1): rerun the benchmark suite and fail
# on >10% regression against the latest recorded BENCH_*.json. Off by
# default so tier-1 stays fast and deterministic on noisy machines.
if [ "${BENCH_CHECK:-0}" = "1" ]; then
    ./scripts/bench.sh -check
fi
