package repro

// The transfer drills: the cross-workload knowledge base driven through the
// real autotune binary. One drill tears the store file mid-record — the
// on-disk image a kill during an append leaves behind — and demands the
// next session salvage the intact prefix and keep warm-starting; the other
// runs the same warm-started session in-process and against a real evald
// fleet and demands byte-identical results, proving the priors change
// *what* is proposed, never *how* measurements are dispatched.

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// trainStore runs one cold fixed-seed session into dir's knowledge base.
func trainStore(t *testing.T, auto, dir, benchmark string, seed int) {
	t.Helper()
	out, err := exec.Command(auto,
		"-benchmark", benchmark, "-budget", "30", "-seed", fmt.Sprint(seed),
		"-transfer-dir", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("training run failed: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("winner recorded")) {
		t.Fatalf("training run recorded nothing:\n%s", out)
	}
}

// TestCLITransferStoreTornTailDrill is the kill-mid-store-write drill
// behind `make transfer-drill`: two sessions train the store, the file is
// truncated mid-record (what a kill during the second append leaves), and
// the next session must salvage the first entry, warm-start from it, and
// leave a store that replays cleanly again.
func TestCLITransferStoreTornTailDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	auto := cliBinary(t, "autotune")
	dir := t.TempDir()

	trainStore(t, auto, dir, "h2", 3)
	trainStore(t, auto, dir, "avrora", 4)

	// Tear the tail: chop into the last appended record, leaving the first
	// entry's frames intact.
	path := filepath.Join(dir, "transfer.store")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command(auto,
		"-benchmark", "fop", "-budget", "30", "-seed", "5",
		"-transfer-dir", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("post-tear run failed: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "warm start") {
		t.Fatalf("salvaged store did not warm-start the session:\n%s", s)
	}
	if !strings.Contains(s, "from 1 stored entries") {
		t.Fatalf("expected exactly the salvaged entry to survive the torn tail:\n%s", s)
	}
	if !strings.Contains(s, "winner recorded") {
		t.Fatalf("post-salvage store rejected the new winner:\n%s", s)
	}

	// The repaired store must replay cleanly: a fourth session sees the
	// salvaged entry plus the post-tear winner, no corruption residue.
	out, err = exec.Command(auto,
		"-benchmark", "fop", "-budget", "30", "-seed", "6",
		"-transfer-dir", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("replay run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "from 2 stored entries") {
		t.Fatalf("repaired store lost entries on replay:\n%s", out)
	}
}

// copyStore clones a trained knowledge base so two warm runs start from
// identical stores (each completed session appends its winner, so sharing
// one directory would let the first run contaminate the second's priors).
func copyStore(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	blob, err := os.ReadFile(filepath.Join(src, "transfer.store"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dst, "transfer.store"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestCLITransferFleetEquivalence pins the acceptance criterion that
// warm-started results are identical in-process and against a real evald
// fleet: the store lives on the controller, so the dispatch plane must not
// see transfer at all.
func TestCLITransferFleetEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	auto, evald := cliBinary(t, "autotune"), cliBinary(t, "evald")
	dir := t.TempDir()
	train := t.TempDir()
	trainStore(t, auto, train, "h2", 3)

	addrs := freePorts(t, 2)
	for i, addr := range addrs {
		startEvald(t, evald, addr, fmt.Sprintf("node%d", i))
	}

	run := func(label string, extra ...string) ([]byte, []byte) {
		t.Helper()
		outPath := filepath.Join(dir, label+".json")
		tracePath := filepath.Join(dir, label+".jsonl")
		args := append([]string{
			"-benchmark", "h2", "-budget", "30", "-seed", "9", "-workers", "2",
			"-transfer-dir", copyStore(t, train),
			"-out", outPath, "-trace", tracePath,
		}, extra...)
		out, err := exec.Command(auto, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s run failed: %v\n%s", label, err, out)
		}
		if !bytes.Contains(out, []byte("warm start")) {
			t.Fatalf("%s run did not warm-start:\n%s", label, out)
		}
		res, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		trace, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		return res, trace
	}

	localRes, localTrace := run("local")
	fleetRes, fleetTrace := run("fleet", "-nodes", strings.Join(addrs, ","))

	if !bytes.Equal(localRes, fleetRes) {
		t.Error("warm-started results differ between in-process and fleet dispatch")
	}
	if !bytes.Equal(localTrace, fleetTrace) {
		t.Error("warm-started event traces differ between in-process and fleet dispatch")
	}
}
